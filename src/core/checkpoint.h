// Phase-boundary session checkpointing.
//
// The chaos layer (sim/chaos.h) can crash a player or partition a link in
// the middle of a session. Without checkpoints the only recovery is a
// full-session retry: every bit already spent is spent again. A
// core::Checkpoint is the alternative: the checkpointable protocols —
// verification tree (per stage), bucket-EQ^k / amortized EQ (per level),
// Basic-Intersection (per round pair) — save a snapshot at each phase
// boundary they cross, and on re-entry after a crash they restore the
// newest snapshot and skip everything before it, replaying only the bits
// since the last boundary. The recovery layer meters that difference as
// `bits_replayed` (bench/exp_chaos asserts checkpointed recovery replays
// strictly fewer bits than full-session retry).
//
// The snapshot is single-slot by design: a session is a linear execution,
// so only the newest boundary matters, and a nested protocol (e.g. the
// Basic-Intersection batches inside a verification-tree stage) simply
// runs un-checkpointed under its parent's coarser granularity. A snapshot
// is (tag, phase, state blob, bits_at_boundary): `tag` names the protocol
// that wrote it, `phase` the first phase still to run, `state` a
// self-contained BitBuffer the protocol can rebuild its live state from,
// and `bits_at_boundary` the channel's bits_total at save time (what
// bits_replayed is measured against).
//
// Determinism contract (pinned in tests/transcript_digest_test.cc):
// snapshot -> restore -> finish on the same channel produces a transcript
// bit-identical to an uninterrupted run. interrupt_after() is the test
// knob that forces an interruption at an exact boundary.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bitio.h"

namespace setint::core {

class SessionBudget;

// Thrown by Checkpoint::save when the interrupt_after test knob fires.
// The snapshot IS stored before the throw — the interruption lands
// exactly on the boundary, losing nothing, which is what lets the resume
// tests pin the same transcript digests as uninterrupted runs.
class CheckpointInterrupt : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by Checkpoint::save when park-at-boundaries mode is armed
// (set_park_at_boundaries) — the cooperative-yield signal of the sans-IO
// engine (core/engine.h). Like CheckpointInterrupt, the snapshot IS
// stored before the throw, so a parked session re-enters the protocol,
// restores the boundary it parked on, and runs exactly one phase further.
// Unlike the interrupt knob it is tag-agnostic and persistent: while
// armed, EVERY save parks, whatever protocol wrote it.
class CheckpointPark : public CheckpointInterrupt {
 public:
  using CheckpointInterrupt::CheckpointInterrupt;
};

class Checkpoint {
 public:
  Checkpoint() = default;

  // Stores a snapshot, replacing any previous one (any tag).
  void save(std::string_view tag, std::uint64_t phase, util::BitBuffer state,
            std::uint64_t bits_at_boundary);

  bool empty() const { return tag_.empty(); }
  bool has(std::string_view tag) const { return !empty() && tag_ == tag; }
  const std::string& tag() const { return tag_; }
  std::uint64_t phase() const { return phase_; }
  const util::BitBuffer& state() const { return state_; }
  std::uint64_t bits_at_boundary() const { return bits_at_boundary_; }

  void clear();

  // Protocols call this when they actually resume from the stored
  // snapshot, so the recovery layer can report checkpoint.restores. A
  // re-entry that resumes a deliberately PARKED boundary (CheckpointPark)
  // is engine bookkeeping, not crash recovery: it lands in park_resumes()
  // instead, keeping checkpoint.restores bit-identical between the
  // blocking path and the stepped sans-IO path.
  void note_restore() {
    if (park_pending_) {
      park_pending_ = false;
      park_resumes_ += 1;
    } else {
      restores_ += 1;
    }
  }

  std::uint64_t snapshots() const { return snapshots_; }
  std::uint64_t restores() const { return restores_; }
  std::uint64_t park_resumes() const { return park_resumes_; }

  // Test knob: the next save() with this tag and phase >= `phase` stores
  // the snapshot, disarms the knob, and throws CheckpointInterrupt —
  // simulating a crash landing exactly on a phase boundary.
  void interrupt_after(std::string_view tag, std::uint64_t phase);

  // Sans-IO stepping (core/engine.h): while armed, every save() stores
  // its snapshot, runs the budget hook, and then throws CheckpointPark.
  // The park lands LAST so per-boundary budget.checks counts — and the
  // precedence of BudgetExhaustedError over a park — are identical to the
  // blocking path.
  void set_park_at_boundaries(bool armed) { park_at_boundaries_ = armed; }
  bool park_at_boundaries() const { return park_at_boundaries_; }

  // Overload governance (core/budget.h): when a budget is attached, every
  // save() runs budget->check() AFTER storing the snapshot, making phase
  // boundaries the cooperative budget-enforcement points. The snapshot
  // lands first so a budget trip loses nothing — a later (cheaper) rung
  // can still resume from it. Not owned; null detaches.
  void set_budget(SessionBudget* budget) { budget_ = budget; }
  SessionBudget* budget() const { return budget_; }

 private:
  std::string tag_;
  std::uint64_t phase_ = 0;
  util::BitBuffer state_;
  std::uint64_t bits_at_boundary_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t restores_ = 0;
  std::uint64_t park_resumes_ = 0;
  bool park_at_boundaries_ = false;
  bool park_pending_ = false;
  std::string interrupt_tag_;
  std::uint64_t interrupt_phase_ = 0;
  bool interrupt_armed_ = false;
  SessionBudget* budget_ = nullptr;
};

}  // namespace setint::core
