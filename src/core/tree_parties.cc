#include "core/tree_parties.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/basic_intersection.h"
#include "hashing/mask_hash.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::core {

namespace {

util::Set image_of(util::SetView s, const hashing::PairwiseHash& h) {
  util::Set image;
  image.reserve(s.size());
  for (std::uint64_t x : s) image.push_back(h(x));
  std::sort(image.begin(), image.end());
  image.erase(std::unique(image.begin(), image.end()), image.end());
  return image;
}

unsigned image_width(const hashing::PairwiseHash& h) {
  return util::ceil_log2(std::max<std::uint64_t>(h.range(), 2));
}

}  // namespace

TreePartyBase::TreePartyBase(sim::SharedRandomness shared,
                             std::uint64_t nonce, std::uint64_t universe,
                             util::Set input,
                             const VerificationTreeParams& params)
    : shared_(shared), nonce_(nonce), universe_(universe), params_(params) {
  util::validate_set(input, universe);
  if (params.bucket_count == 0) {
    // A party cannot see the peer's size, so the public bound must be
    // explicit in this execution mode.
    throw std::invalid_argument("tree party: bucket_count must be explicit");
  }
  if (params.worst_case_cutoff_factor != 0.0) {
    throw std::invalid_argument("tree party: cutoff unsupported");
  }
  buckets_ = params.bucket_count;
  r_ = params.rounds_r != 0
           ? params.rounds_r
           : std::max(1, util::log_star(static_cast<double>(buckets_)));
  if (r_ < 2) throw std::invalid_argument("tree party: requires r >= 2");
  layout_ = verification_tree_layout(buckets_, r_);

  util::Rng bucket_stream = shared_.stream("vt-buckets", nonce_);
  const auto h =
      hashing::PairwiseHash::sample(bucket_stream, universe_, buckets_);
  assignment_.resize(buckets_);
  for (std::uint64_t x : input) assignment_[h(x)].push_back(x);
  for (auto& bucket : assignment_) std::sort(bucket.begin(), bucket.end());
}

std::size_t TreePartyBase::eq_bits(int stage) const {
  const double tower = std::max(
      2.0, util::iterated_log(r_ - stage - 1, static_cast<double>(buckets_)));
  return static_cast<std::size_t>(std::max(
      1.0, std::ceil(params_.eq_bits_scale * 4.0 * std::log2(tower))));
}

double TreePartyBase::bi_failure(int stage) const {
  const double tower = std::max(
      2.0, util::iterated_log(r_ - stage - 1, static_cast<double>(buckets_)));
  return std::min(0.25, (1.0 / std::pow(tower, 4.0)) /
                            std::max(1e-6, params_.bi_range_scale));
}

std::vector<util::BitBuffer> TreePartyBase::node_contents(int stage) const {
  const auto& ranges = layout_[static_cast<std::size_t>(stage)];
  std::vector<util::BitBuffer> contents(ranges.size());
  for (std::size_t v = 0; v < ranges.size(); ++v) {
    for (std::size_t u = ranges[v].first; u < ranges[v].second; ++u) {
      util::append_set(contents[v], assignment_[u]);
    }
  }
  return contents;
}

util::BitBuffer TreePartyBase::build_eq_hashes(int stage) const {
  const std::uint64_t eq_nonce =
      util::mix64(nonce_, util::mix64(0xE9, stage));
  const std::size_t bits = eq_bits(stage);
  util::BitBuffer message;
  const std::vector<util::BitBuffer> contents = node_contents(stage);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    hashing::mask_hash_wide(contents[i], bits,
                            shared_.stream("eq", eq_nonce, i), message);
  }
  return message;
}

void TreePartyBase::set_failed_from_verdicts(const std::vector<bool>& pass,
                                             int stage) {
  failed_leaves_.clear();
  const auto& ranges = layout_[static_cast<std::size_t>(stage)];
  for (std::size_t v = 0; v < ranges.size(); ++v) {
    if (pass[v]) continue;
    for (std::size_t u = ranges[v].first; u < ranges[v].second; ++u) {
      failed_leaves_.push_back(u);
    }
  }
}

util::BitBuffer TreePartyBase::build_bi_sizes() const {
  util::BitBuffer message;
  for (std::size_t u : failed_leaves_) {
    message.append_gamma64(assignment_[u].size());
  }
  return message;
}

void TreePartyBase::decode_peer_sizes(const util::BitBuffer& message) {
  util::BitReader reader(message);
  peer_sizes_.clear();
  for (std::size_t j = 0; j < failed_leaves_.size(); ++j) {
    peer_sizes_.push_back(reader.read_gamma64());
  }
}

util::BitBuffer TreePartyBase::build_bi_images(int stage) {
  // Derive the per-pair hash functions (both parties know both sizes by
  // now), then emit images for the non-skip pairs.
  const std::uint64_t bi_nonce =
      util::mix64(nonce_, util::mix64(0xB1, stage));
  const double failure = bi_failure(stage);
  bi_hashes_.clear();
  util::BitBuffer message;
  for (std::size_t j = 0; j < failed_leaves_.size(); ++j) {
    const std::size_t u = failed_leaves_[j];
    const std::uint64_t m = assignment_[u].size() + peer_sizes_[j];
    util::Rng stream = shared_.stream("basic-intersection", bi_nonce, j);
    bi_hashes_.push_back(hashing::PairwiseHash::sample(
        stream, universe_, basic_intersection_range(m, failure)));
    if (assignment_[u].empty() || peer_sizes_[j] == 0) continue;
    const util::Set image = image_of(assignment_[u], bi_hashes_[j]);
    message.append_gamma64(image.size());
    const unsigned width = image_width(bi_hashes_[j]);
    for (std::uint64_t v : image) message.append_bits(v, width);
  }
  return message;
}

void TreePartyBase::apply_peer_images(const util::BitBuffer& message,
                                      int /*stage*/) {
  util::BitReader reader(message);
  for (std::size_t j = 0; j < failed_leaves_.size(); ++j) {
    const std::size_t u = failed_leaves_[j];
    if (assignment_[u].empty() || peer_sizes_[j] == 0) {
      assignment_[u].clear();  // certainly-empty intersection
      continue;
    }
    const unsigned width = image_width(bi_hashes_[j]);
    const std::uint64_t count = reader.read_gamma64();
    reader.expect_at_least(count, width, "image count");
    util::Set peer_image(count);
    for (auto& v : peer_image) v = reader.read_bits(width);
    if (!util::is_canonical_set(peer_image)) {
      throw std::invalid_argument(
          "decode: hashed image not strictly increasing (field 'image')");
    }
    util::Set filtered;
    for (std::uint64_t x : assignment_[u]) {
      if (util::set_contains(peer_image, bi_hashes_[j](x))) {
        filtered.push_back(x);
      }
    }
    assignment_[u] = std::move(filtered);
  }
}

util::Set TreePartyBase::gather_output() const {
  util::Set out;
  for (const util::Set& bucket : assignment_) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------- Alice ----------

TreeAlice::TreeAlice(sim::SharedRandomness shared, std::uint64_t nonce,
                     std::uint64_t universe, util::Set input,
                     const VerificationTreeParams& params)
    : TreePartyBase(shared, nonce, universe, std::move(input), params) {}

std::optional<util::BitBuffer> TreeAlice::start() {
  phase_ = Phase::kAwaitVerdicts;
  return build_eq_hashes(stage_);
}

std::optional<util::BitBuffer> TreeAlice::advance_stage() {
  ++stage_;
  if (stage_ >= r_) {
    phase_ = Phase::kDone;
    return std::nullopt;
  }
  phase_ = Phase::kAwaitVerdicts;
  return build_eq_hashes(stage_);
}

std::optional<util::BitBuffer> TreeAlice::on_message(
    const util::BitBuffer& message) {
  switch (phase_) {
    case Phase::kAwaitVerdicts: {
      util::BitReader reader(message);
      const std::size_t nodes =
          layout_[static_cast<std::size_t>(stage_)].size();
      std::vector<bool> pass(nodes);
      for (std::size_t v = 0; v < nodes; ++v) pass[v] = reader.read_bit();
      set_failed_from_verdicts(pass, stage_);
      if (failed_leaves_.empty()) return advance_stage();
      phase_ = Phase::kAwaitSizes;
      return build_bi_sizes();
    }
    case Phase::kAwaitSizes: {
      decode_peer_sizes(message);
      phase_ = Phase::kAwaitImages;
      return build_bi_images(stage_);
    }
    case Phase::kAwaitImages: {
      apply_peer_images(message, stage_);
      return advance_stage();
    }
    default:
      throw std::logic_error("TreeAlice: unexpected message");
  }
}

// ---------- Bob ----------

TreeBob::TreeBob(sim::SharedRandomness shared, std::uint64_t nonce,
                 std::uint64_t universe, util::Set input,
                 const VerificationTreeParams& params)
    : TreePartyBase(shared, nonce, universe, std::move(input), params) {}

std::optional<util::BitBuffer> TreeBob::on_message(
    const util::BitBuffer& message) {
  switch (phase_) {
    case Phase::kAwaitEqHashes: {
      const std::size_t bits = eq_bits(stage_);
      const std::uint64_t eq_nonce =
          util::mix64(nonce_, util::mix64(0xE9, stage_));
      const std::vector<util::BitBuffer> contents = node_contents(stage_);
      util::BitReader reader(message);
      util::BitBuffer verdicts;
      std::vector<bool> pass(contents.size());
      for (std::size_t i = 0; i < contents.size(); ++i) {
        util::BitBuffer expected;
        hashing::mask_hash_wide(contents[i], bits,
                                shared_.stream("eq", eq_nonce, i), expected);
        util::BitReader er(expected);
        bool match = true;
        for (std::size_t b = 0; b < bits; ++b) {
          if (reader.read_bit() != er.read_bit()) match = false;
        }
        pass[i] = match;
        verdicts.append_bit(match);
      }
      set_failed_from_verdicts(pass, stage_);
      if (failed_leaves_.empty()) {
        ++stage_;
        if (stage_ >= r_) phase_ = Phase::kDone;
      } else {
        phase_ = Phase::kAwaitSizes;
      }
      return verdicts;
    }
    case Phase::kAwaitSizes: {
      decode_peer_sizes(message);
      phase_ = Phase::kAwaitImages;
      return build_bi_sizes();
    }
    case Phase::kAwaitImages: {
      // Build own images from the PRE-update assignments (the driver does
      // the same), then filter by Alice's images.
      util::BitBuffer reply = build_bi_images(stage_);
      apply_peer_images(message, stage_);
      ++stage_;
      phase_ = stage_ >= r_ ? Phase::kDone : Phase::kAwaitEqHashes;
      return reply;
    }
    default:
      throw std::logic_error("TreeBob: unexpected message");
  }
}

}  // namespace setint::core
