// The verification-tree protocol (Algorithm 1) as strictly-separated
// party state machines — the paper's MAIN protocol in message-driven
// form, proving the driver implementation in verification_tree.cc uses no
// out-of-band knowledge. Message formats, substream labels and parameter
// schedules mirror the driver bit-for-bit; tests/tree_parties_test.cc
// checks whole-transcript digests for equality.
//
// Message flow per stage (at most 6 messages, matching the 6r bound):
//   A -> B : equality hashes for every level-i node
//   B -> A : verdict bitmap
//   [only when some node failed]
//   A -> B : Basic-Intersection sizes for every failed leaf
//   B -> A : sizes
//   A -> B : hashed images
//   B -> A : hashed images
//
// Restrictions vs. the driver: r >= 2 (the r = 1 delegation to the
// one-round protocol lives in OneRoundHash{Alice,Bob}) and no worst-case
// cutoff (set params.worst_case_cutoff_factor = 0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/verification_tree.h"
#include "hashing/pairwise.h"
#include "sim/randomness.h"
#include "sim/runtime.h"
#include "util/set_util.h"

namespace setint::core {

// State shared by the two endpoints (everything here is derived from
// public parameters plus the party's own input).
class TreePartyBase {
 protected:
  TreePartyBase(sim::SharedRandomness shared, std::uint64_t nonce,
                std::uint64_t universe, util::Set input,
                const VerificationTreeParams& params);

  // The stage-i equality-bit width / Basic-Intersection failure target
  // (identical formulas to the driver).
  std::size_t eq_bits(int stage) const;
  double bi_failure(int stage) const;

  // Own-side message builders / decoders.
  util::BitBuffer build_eq_hashes(int stage) const;
  std::vector<util::BitBuffer> node_contents(int stage) const;
  util::BitBuffer build_bi_sizes() const;
  util::BitBuffer build_bi_images(int stage);  // derives bi_hashes_
  void decode_peer_sizes(const util::BitBuffer& message);
  void apply_peer_images(const util::BitBuffer& message, int stage);
  void set_failed_from_verdicts(const std::vector<bool>& pass, int stage);

  util::Set gather_output() const;

  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  std::uint64_t universe_;
  VerificationTreeParams params_;
  std::size_t buckets_ = 0;
  int r_ = 0;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> layout_;
  std::vector<util::Set> assignment_;       // per-leaf candidates
  std::vector<std::size_t> failed_leaves_;  // current stage's repairs
  std::vector<std::uint64_t> peer_sizes_;   // per failed leaf
  std::vector<hashing::PairwiseHash> bi_hashes_;
};

class TreeAlice final : public sim::Party, private TreePartyBase {
 public:
  TreeAlice(sim::SharedRandomness shared, std::uint64_t nonce,
            std::uint64_t universe, util::Set input,
            const VerificationTreeParams& params);
  std::optional<util::BitBuffer> start() override;
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return phase_ == Phase::kDone; }
  util::Set output() const { return gather_output(); }

 private:
  enum class Phase { kAwaitVerdicts, kAwaitSizes, kAwaitImages, kDone };
  std::optional<util::BitBuffer> advance_stage();
  Phase phase_ = Phase::kAwaitVerdicts;
  int stage_ = 0;
};

class TreeBob final : public sim::Party, private TreePartyBase {
 public:
  TreeBob(sim::SharedRandomness shared, std::uint64_t nonce,
          std::uint64_t universe, util::Set input,
          const VerificationTreeParams& params);
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return phase_ == Phase::kDone; }
  util::Set output() const { return gather_output(); }

 private:
  enum class Phase { kAwaitEqHashes, kAwaitSizes, kAwaitImages, kDone };
  Phase phase_ = Phase::kAwaitEqHashes;
  int stage_ = 0;
};

}  // namespace setint::core
