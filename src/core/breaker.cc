#include "core/breaker.h"

#include <algorithm>

namespace setint::core {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

bool CircuitBreaker::allow() {
  if (!policy_.enabled()) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // One probe is in flight conceptually; in this single-threaded
      // simulator every call while half-open is a legitimate trial.
      return true;
    case BreakerState::kOpen:
      if (open_denials_ + 1 >= std::max<std::uint64_t>(1, policy_.cooldown)) {
        state_ = BreakerState::kHalfOpen;
        trial_successes_ = 0;
        ++half_opens_;
        return true;
      }
      ++open_denials_;
      ++denials_;
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() {
  if (!policy_.enabled()) return;
  if (state_ == BreakerState::kHalfOpen) {
    ++trial_successes_;
    if (trial_successes_ >= std::max<std::uint64_t>(1, policy_.close_after)) {
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      ++closes_;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure() {
  if (!policy_.enabled()) return;
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: straight back to open for a fresh cooldown.
    state_ = BreakerState::kOpen;
    open_denials_ = 0;
    consecutive_failures_ = policy_.failure_threshold;
    ++opens_;
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= policy_.failure_threshold) {
    state_ = BreakerState::kOpen;
    open_denials_ = 0;
    ++opens_;
  }
}

CircuitBreaker& BreakerBoard::link(std::size_t a, std::size_t b) {
  const auto key = std::minmax(a, b);
  auto it = breakers_.find(key);
  if (it == breakers_.end()) {
    it = breakers_.emplace(key, CircuitBreaker(policy_)).first;
  }
  return it->second;
}

std::uint64_t BreakerBoard::total_opens() const {
  std::uint64_t n = 0;
  for (const auto& [key, b] : breakers_) n += b.opens();
  return n;
}

std::uint64_t BreakerBoard::total_denials() const {
  std::uint64_t n = 0;
  for (const auto& [key, b] : breakers_) n += b.denials();
  return n;
}

std::size_t BreakerBoard::open_links() const {
  std::size_t n = 0;
  for (const auto& [key, b] : breakers_) {
    if (b.state() != BreakerState::kClosed) ++n;
  }
  return n;
}

}  // namespace setint::core
