#include "core/deterministic_exchange.h"

#include "obs/tracer.h"
#include "util/bitio.h"

namespace setint::core {

IntersectionOutput deterministic_exchange(sim::Channel& channel,
                                          std::uint64_t universe,
                                          util::SetView s, util::SetView t,
                                          bool both_sides) {
  validate_instance(universe, s, t);
  obs::Span protocol_span(channel.tracer(), "deterministic_exchange");
  // Rice coding keeps this baseline within ~1.5 bits/element of the
  // information-theoretic log2 C(n, k) — the strongest honest yardstick.
  util::BitBuffer msg;
  util::append_set_rice(msg, s, universe);
  const util::BitBuffer delivered =
      channel.send(sim::PartyId::kAlice, std::move(msg), "full-set");
  util::BitReader reader = channel.reader(delivered);
  const util::Set received = util::read_set_rice(reader, universe);

  IntersectionOutput out;
  out.bob = util::set_intersection(received, t);
  if (both_sides) {
    util::BitBuffer reply;
    util::append_set_rice(reply, out.bob, universe);
    const util::BitBuffer back =
        channel.send(sim::PartyId::kBob, std::move(reply), "intersection");
    util::BitReader rr = channel.reader(back);
    out.alice = util::read_set_rice(rr, universe);
  } else {
    out.alice = out.bob;  // convention: report Bob's exact answer
  }
  return out;
}

RunResult DeterministicExchangeProtocol::run(std::uint64_t /*seed*/,
                                             std::uint64_t universe,
                                             util::SetView s,
                                             util::SetView t) const {
  sim::Channel channel;
  RunResult r;
  r.output = deterministic_exchange(channel, universe, s, t);
  r.cost = channel.cost();
  return r;
}

}  // namespace setint::core
