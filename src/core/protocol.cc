#include "core/protocol.h"

#include <stdexcept>

namespace setint::core {

void validate_instance(std::uint64_t universe, util::SetView s,
                       util::SetView t) {
  if (universe == 0) throw std::invalid_argument("universe must be positive");
  util::validate_set(s, universe);
  util::validate_set(t, universe);
}

}  // namespace setint::core
