#include "core/basic_intersection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hashing/pairwise.h"
#include "obs/tracer.h"
#include "util/arena.h"
#include "util/bitio.h"
#include "util/iterated_log.h"

namespace setint::core {

// Hash range giving pairwise-collision failure <= target_failure: with
// <= m^2/4 cross pairs at <= 2/t collision probability each (the factor 2
// is the Carter-Wegman mod-fold slack), t = m^2 / (2 * target_failure)
// suffices. Clamped to 2^62: beyond that the collision probability is
// already negligible and prime sampling would overflow.
std::uint64_t basic_intersection_range(std::uint64_t total_size,
                                       double target_failure) {
  if (total_size < 2) return 2;
  const double t =
      std::min(0x1p62, static_cast<double>(total_size) *
                           static_cast<double>(total_size) /
                           (2.0 * target_failure));
  return std::max<std::uint64_t>(2, static_cast<std::uint64_t>(std::ceil(t)));
}

namespace {

// Batched per-instance hash evaluation: hash every element in one pass
// into arena scratch. The raw (input-order) value array doubles as the
// lookup table for the final filter; the sorted-unique copy is the image
// sent on the wire.
std::span<std::uint64_t> hashed_values(util::SetView s,
                                       const hashing::PairwiseHash& h,
                                       util::ScratchArena& arena) {
  const std::span<std::uint64_t> vals = arena.alloc_u64(s.size());
  h.hash_many(s, vals);
  return vals;
}

std::span<const std::uint64_t> sorted_unique_image(
    std::span<const std::uint64_t> vals, util::ScratchArena& arena) {
  const std::span<std::uint64_t> image = arena.alloc_u64(vals.size());
  std::copy(vals.begin(), vals.end(), image.begin());
  std::sort(image.begin(), image.end());
  const auto last = std::unique(image.begin(), image.end());
  return {image.data(), static_cast<std::size_t>(last - image.begin())};
}

util::Set filter_by_peer_image(util::SetView own,
                               std::span<const std::uint64_t> own_vals,
                               util::SetView peer_image) {
  util::Set out;
  for (std::size_t i = 0; i < own.size(); ++i) {
    if (util::set_contains(peer_image, own_vals[i])) out.push_back(own[i]);
  }
  return out;
}

}  // namespace

std::vector<CandidatePair> basic_intersection_batch(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, std::uint64_t universe,
    std::span<const std::pair<util::SetView, util::SetView>> pairs,
    double target_failure, Checkpoint* ckpt) {
  if (!(target_failure > 0.0) || !(target_failure < 1.0)) {
    throw std::invalid_argument("basic_intersection: failure must be in (0,1)");
  }
  const std::size_t n = pairs.size();
  std::vector<CandidatePair> result(n);
  if (n == 0) return result;

  util::ScratchArena::Frame scratch_frame(channel.scratch());
  util::ScratchArena& arena = channel.scratch();

  obs::Tracer* tracer = channel.tracer();
  obs::count(tracer, "bi.batches");
  obs::count(tracer, "bi.instances", n);

  // Crash resume (tag "bi"): phase 1 = sizes exchanged, phase 2 = sizes +
  // Alice's images exchanged. The snapshot carries the agreed m_j values;
  // everything else is recomputed locally, so only the not-yet-delivered
  // messages are replayed on the channel.
  std::uint64_t start_phase = 0;
  std::vector<std::uint64_t> m(n);
  if (ckpt != nullptr && ckpt->has("bi")) {
    util::BitReader rd(ckpt->state());
    const std::uint64_t saved_n = rd.read_gamma64();
    if (saved_n != n) {
      throw std::logic_error("basic_intersection: checkpoint batch size "
                             "mismatch");
    }
    for (std::size_t j = 0; j < n; ++j) m[j] = rd.read_gamma64();
    start_phase = ckpt->phase();
    ckpt->note_restore();
  }

  const auto snapshot_m = [&]() {
    util::BitBuffer blob;
    blob.append_gamma64(n);
    for (std::size_t j = 0; j < n; ++j) blob.append_gamma64(m[j]);
    return blob;
  };

  if (start_phase == 0) {
    // Rounds 1 and 2: sizes in both directions.
    util::BitBuffer alice_sizes;
    for (const auto& [s, t] : pairs) {
      (void)t;
      alice_sizes.append_gamma64(s.size());
    }
    util::BitBuffer a_sz;
    util::BitBuffer b_sz;
    {
      obs::Span size_span(tracer, "size_exchange");
      a_sz = channel.send(sim::PartyId::kAlice, std::move(alice_sizes),
                          "bi-sizes-a");
      util::BitBuffer bob_sizes;
      for (const auto& [s, t] : pairs) {
        (void)s;
        bob_sizes.append_gamma64(t.size());
      }
      b_sz = channel.send(sim::PartyId::kBob, std::move(bob_sizes),
                          "bi-sizes-b");
    }

    // Both parties now know every m_j and can derive identical hash
    // functions from shared randomness. Readers carry the channel's
    // resource limits so crafted length prefixes are charged against
    // max_decoded_items (docs/ROBUSTNESS.md).
    util::BitReader ra = channel.reader(a_sz);
    util::BitReader rb = channel.reader(b_sz);
    for (std::size_t j = 0; j < n; ++j) {
      m[j] = ra.read_gamma64() + rb.read_gamma64();
    }
    if (ckpt != nullptr) {
      ckpt->save("bi", 1, snapshot_m(), channel.cost().bits_total);
    }
  }

  std::vector<hashing::PairwiseHash> hashes;
  hashes.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    util::Rng stream = shared.stream("basic-intersection", nonce, j);
    hashes.push_back(hashing::PairwiseHash::sample(
        stream, universe,
        basic_intersection_range(m[j], target_failure)));
  }

  // Rounds 3 and 4: hashed images in both directions, fixed-width coded
  // (the paper's O(i * m log m) accounting). Instances where either side
  // is empty have a certainly-empty intersection — both parties know the
  // sizes by now, so no hash bits flow for them.
  const auto skip = [&pairs](std::size_t j) {
    return pairs[j].first.empty() || pairs[j].second.empty();
  };
  const auto append_image = [](util::BitBuffer& out,
                               std::span<const std::uint64_t> image,
                               std::uint64_t range) {
    out.append_gamma64(image.size());
    const unsigned width = util::ceil_log2(std::max<std::uint64_t>(range, 2));
    for (std::uint64_t v : image) out.append_bits(v, width);
  };
  const auto read_image = [](util::BitReader& in, std::uint64_t range) {
    const std::uint64_t count = in.read_gamma64();
    const unsigned width = util::ceil_log2(std::max<std::uint64_t>(range, 2));
    in.expect_at_least(count, width, "image count");
    util::Set image(count);
    for (auto& v : image) v = in.read_bits(width);
    // Images are sorted-unique by construction; the binary searches in
    // filter_by_peer_image rely on it.
    if (!util::is_canonical_set(image)) {
      throw std::invalid_argument(
          "decode: hashed image not strictly increasing (field 'image')");
    }
    return image;
  };

  // Hash every instance's elements once; the raw arrays feed both the
  // transmitted images and the final filter without re-evaluating h.
  std::vector<std::span<std::uint64_t>> a_vals(n);
  std::vector<std::span<std::uint64_t>> b_vals(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (skip(j)) continue;
    a_vals[j] = hashed_values(pairs[j].first, hashes[j], arena);
    b_vals[j] = hashed_values(pairs[j].second, hashes[j], arena);
  }

  util::BitBuffer a_msg;
  util::BitBuffer b_msg;
  {
    obs::Span hash_span(tracer, "hash_exchange");
    util::BitBuffer alice_hashes;
    for (std::size_t j = 0; j < n; ++j) {
      if (skip(j)) continue;
      append_image(alice_hashes, sorted_unique_image(a_vals[j], arena),
                   hashes[j].range());
    }
    if (start_phase >= 2) {
      // Alice's images were already delivered before the crash; the
      // delivered copy is recomputed locally instead of re-sent (a
      // successful framed send means it arrived intact).
      a_msg = std::move(alice_hashes);
    } else {
      a_msg = channel.send(sim::PartyId::kAlice, std::move(alice_hashes),
                           "bi-hashes-a");
      if (ckpt != nullptr) {
        ckpt->save("bi", 2, snapshot_m(), channel.cost().bits_total);
      }
    }

    util::BitBuffer bob_hashes;
    for (std::size_t j = 0; j < n; ++j) {
      if (skip(j)) continue;
      append_image(bob_hashes, sorted_unique_image(b_vals[j], arena),
                   hashes[j].range());
    }
    b_msg = channel.send(sim::PartyId::kBob, std::move(bob_hashes),
                         "bi-hashes-b");
  }

  // Decode the peer's images and filter own elements.
  util::BitReader a_reader = channel.reader(a_msg);
  util::BitReader b_reader = channel.reader(b_msg);
  for (std::size_t j = 0; j < n; ++j) {
    if (skip(j)) continue;  // candidates stay empty
    const util::Set peer_for_bob = read_image(a_reader, hashes[j].range());
    const util::Set peer_for_alice = read_image(b_reader, hashes[j].range());
    result[j].s_candidate =
        filter_by_peer_image(pairs[j].first, a_vals[j], peer_for_alice);
    result[j].t_candidate =
        filter_by_peer_image(pairs[j].second, b_vals[j], peer_for_bob);
  }
  return result;
}

CandidatePair basic_intersection(sim::Channel& channel,
                                 const sim::SharedRandomness& shared,
                                 std::uint64_t nonce, std::uint64_t universe,
                                 util::SetView s, util::SetView t,
                                 double target_failure, Checkpoint* ckpt) {
  util::validate_set(s, universe);
  util::validate_set(t, universe);
  const std::pair<util::SetView, util::SetView> one[] = {{s, t}};
  return basic_intersection_batch(channel, shared, nonce, universe, one,
                                  target_failure, ckpt)[0];
}

}  // namespace setint::core
