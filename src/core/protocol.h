// Common types and the polymorphic protocol interface.
//
// Every two-party intersection protocol in the library consumes
// (universe, S, T) with |S|, |T| <= k and produces candidate outputs for
// both parties plus exact communication costs. The polymorphic wrapper
// exists so benchmarks can sweep a heterogeneous "protocol zoo".
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::core {

// What each party believes the intersection is after the protocol. All
// protocols here guarantee alice == bob == S intersect T with high
// probability, and alice, bob are SUPERSETS of the true intersection with
// probability 1 (one-sided randomness; Lemma 3.3 property 3).
struct IntersectionOutput {
  util::Set alice;
  util::Set bob;
};

struct RunResult {
  IntersectionOutput output;
  sim::CostStats cost;
};

class IntersectionProtocol {
 public:
  virtual ~IntersectionProtocol() = default;

  virtual std::string name() const = 0;

  // Runs one execution on a fresh channel with the given shared-randomness
  // seed. Implementations must validate inputs (canonical sets within the
  // universe).
  virtual RunResult run(std::uint64_t seed, std::uint64_t universe,
                        util::SetView s, util::SetView t) const = 0;
};

// Input validation shared by all protocol entry points.
void validate_instance(std::uint64_t universe, util::SetView s,
                       util::SetView t);

}  // namespace setint::core
