// Per-link circuit breaker: closed -> open -> half-open.
//
// A breaker watches attempt outcomes on one (unordered) player pair and
// trips after `failure_threshold` consecutive failures. While open it
// denies attempts outright — the session (or the coordinator, before it
// even opens a session) routes the pair straight down the degradation
// ladder instead of burning retry tokens on a link the evidence says is
// dead. After `cooldown` denied probes the breaker moves to half-open
// and admits a single trial attempt: success (then `close_after - 1`
// more) closes it, failure re-opens it.
//
//            failure_threshold                cooldown denials
//   CLOSED ---------------------> OPEN -------------------------> HALF-OPEN
//     ^  ^                         ^                                  |  |
//     |  '--- success resets ---'  '---------- trial fails ----------'  |
//     '----------------- close_after trial successes ------------------'
//
// Determinism: there is no wall clock. "Cooldown" is counted in denied
// allow() calls, which in this simulator are a pure function of the
// protocol/fault/chaos seeds — so breaker trajectories replay exactly
// (docs/ROBUSTNESS.md § overload governance).
#pragma once

#include <cstdint>
#include <map>
#include <utility>

namespace setint::core {

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerPolicy {
  // Consecutive failures before the breaker trips; 0 disables it
  // (allow() always true, outcomes ignored).
  std::uint64_t failure_threshold = 0;
  // Denied allow() calls an open breaker absorbs before letting a
  // half-open probe through.
  std::uint64_t cooldown = 4;
  // Consecutive half-open successes required to fully close again.
  std::uint64_t close_after = 1;

  bool enabled() const { return failure_threshold != 0; }
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerPolicy& policy = {})
      : policy_(policy) {}

  // Gate an attempt. Closed: always true. Open: false for `cooldown`
  // calls, then transitions to half-open and admits the probe.
  // Half-open: admits (the probe's outcome decides what happens next).
  bool allow();

  // Outcome feedback for an attempt that allow() admitted.
  void on_success();
  void on_failure();

  BreakerState state() const { return state_; }
  const BreakerPolicy& policy() const { return policy_; }

  std::uint64_t opens() const { return opens_; }          // closed/half->open
  std::uint64_t closes() const { return closes_; }        // half-open->closed
  std::uint64_t half_opens() const { return half_opens_; }
  std::uint64_t denials() const { return denials_; }      // allow()==false

 private:
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t open_denials_ = 0;      // denials since last trip
  std::uint64_t trial_successes_ = 0;   // successes while half-open
  std::uint64_t opens_ = 0;
  std::uint64_t closes_ = 0;
  std::uint64_t half_opens_ = 0;
  std::uint64_t denials_ = 0;
};

// One breaker per unordered player pair, lazily created, shared by the
// coordinator across its sessions so evidence accumulates per link.
class BreakerBoard {
 public:
  explicit BreakerBoard(const BreakerPolicy& policy = {})
      : policy_(policy) {}

  bool enabled() const { return policy_.enabled(); }

  // The breaker for link {a, b} (order-insensitive).
  CircuitBreaker& link(std::size_t a, std::size_t b);

  // Aggregates across every link touched so far.
  std::uint64_t total_opens() const;
  std::uint64_t total_denials() const;
  std::size_t open_links() const;  // links currently open or half-open

 private:
  BreakerPolicy policy_;
  std::map<std::pair<std::size_t, std::size_t>, CircuitBreaker> breakers_;
};

}  // namespace setint::core
