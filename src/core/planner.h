// Protocol planner: which protocol should two servers actually run?
//
// The paper gives a family of protocols indexed by the round budget r;
// the right choice depends on (k, n, rounds available). The planner holds
// calibrated closed-form cost models for every protocol in the zoo and
// picks the cheapest plan that fits the round budget — the query-optimizer
// piece a deployment would sit on top of this library.
//
// Models are calibrated against the measured constants from EXPERIMENTS.md
// and are validated to within a factor of two by tests/planner_test.cc.
//
// Besides bits-on-the-wire, every plan carries a local-compute estimate
// that knows which SIMD kernel tier the process dispatched to (scalar /
// SSE4.1 / AVX2 — src/simd/dispatch.h): the same protocol costs
// measurably different CPU depending on whether the hash lanes and the
// intersection oracle run vectorized. Ties on bits break toward the
// cheaper local estimate. The dispatch ladder, kernel-selection
// heuristic, and the crossover table behind these constants are
// documented in docs/PERFORMANCE.md ("The SIMD dispatch ladder").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "simd/dispatch.h"

namespace setint::core {

enum class PlanKind {
  kDeterministicExchange,
  kOneRoundHash,
  kToyBuckets,
  kBucketEq,
  kVerificationTree,
};

struct Plan {
  PlanKind kind;
  int rounds_r = 0;            // tree stage count (kVerificationTree only)
  double estimated_bits = 0;   // expected total communication
  std::uint64_t estimated_rounds = 0;
  // Local-compute estimate for both parties combined, priced for
  // kernel_tier (the tier simd::active_tier() reported when the plan was
  // built). Coarse — it ranks plans and breaks bit ties, it is not a
  // profiler.
  double estimated_local_ns = 0;
  simd::Tier kernel_tier = simd::Tier::kScalar;
  std::string description;
};

struct PlannerQuery {
  std::uint64_t universe = 0;   // n
  std::size_t k = 0;            // size bound on both sets
  // Maximum rounds the deployment tolerates; 0 = unlimited.
  std::uint64_t round_budget = 0;
};

// Closed-form expected-cost estimate for one protocol configuration.
double estimate_bits(PlanKind kind, const PlannerQuery& query, int rounds_r);
std::uint64_t estimate_rounds(PlanKind kind, const PlannerQuery& query,
                              int rounds_r);

// Closed-form local-compute estimate (ns, both parties) priced for the
// given kernel tier: hashing substrate throughput and intersection-oracle
// throughput differ per tier (constants from the exp_cpu SIMD lane).
double estimate_local_ns(PlanKind kind, const PlannerQuery& query,
                         int rounds_r, simd::Tier tier);

// All candidate plans meeting the round budget, cheapest first.
std::vector<Plan> enumerate_plans(const PlannerQuery& query);

// The cheapest plan within budget; throws std::invalid_argument if the
// query is malformed or no plan fits (a 1-round budget, say).
Plan choose_plan(const PlannerQuery& query);

// Instantiate the chosen plan as a runnable protocol object.
std::unique_ptr<IntersectionProtocol> instantiate(const Plan& plan);

}  // namespace setint::core
