// Strictly-separated party implementations of the building-block
// protocols (see sim/runtime.h). Each party object holds ONLY its own
// input plus its view of the common random string, and mirrors the
// driver-style implementation bit-for-bit: identical substream labels and
// encodings, hence identical transcripts — which the runtime tests verify
// by digest comparison.
#pragma once

#include <cstdint>
#include <optional>

#include "hashing/pairwise.h"
#include "sim/randomness.h"
#include "sim/runtime.h"
#include "util/set_util.h"

namespace setint::core {

// ---------- Fact 3.5 equality ----------

// Opener: sends the mask hash of its string, then reads the verdict.
class EqualitySender final : public sim::Party {
 public:
  EqualitySender(sim::SharedRandomness shared, std::uint64_t nonce,
                 util::BitBuffer content, std::size_t bits);
  std::optional<util::BitBuffer> start() override;
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return done_; }
  bool declared_equal() const { return declared_equal_; }

 private:
  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  util::BitBuffer content_;
  std::size_t bits_;
  bool done_ = false;
  bool declared_equal_ = false;
};

// Responder: compares the received hash with its own, replies the verdict.
class EqualityResponder final : public sim::Party {
 public:
  EqualityResponder(sim::SharedRandomness shared, std::uint64_t nonce,
                    util::BitBuffer content, std::size_t bits);
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return done_; }
  bool declared_equal() const { return declared_equal_; }

 private:
  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  util::BitBuffer content_;
  std::size_t bits_;
  bool done_ = false;
  bool declared_equal_ = false;
};

// ---------- one-round hashing (R^(1)) ----------

class OneRoundHashAlice final : public sim::Party {
 public:
  // k_bound is the public size bound (|S|, |T| <= k_bound); both parties
  // must pass the same value or their hash functions desynchronize.
  OneRoundHashAlice(sim::SharedRandomness shared, std::uint64_t nonce,
                    std::uint64_t universe, util::Set input,
                    std::uint64_t k_bound, int strength = 3);
  std::optional<util::BitBuffer> start() override;
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return done_; }
  const util::Set& candidates() const { return candidates_; }

 private:
  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  std::uint64_t universe_;
  util::Set input_;
  std::uint64_t k_bound_;
  int strength_;
  bool done_ = false;
  util::Set candidates_;
};

class OneRoundHashBob final : public sim::Party {
 public:
  OneRoundHashBob(sim::SharedRandomness shared, std::uint64_t nonce,
                  std::uint64_t universe, util::Set input,
                  std::uint64_t k_bound, int strength = 3);
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return done_; }
  const util::Set& candidates() const { return candidates_; }

 private:
  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  std::uint64_t universe_;
  util::Set input_;
  std::uint64_t k_bound_;
  int strength_;
  bool done_ = false;
  util::Set candidates_;
};

// ---------- Basic-Intersection (Lemma 3.3), single instance ----------

class BasicIntersectionAlice final : public sim::Party {
 public:
  BasicIntersectionAlice(sim::SharedRandomness shared, std::uint64_t nonce,
                         std::uint64_t universe, util::Set input,
                         double target_failure);
  std::optional<util::BitBuffer> start() override;
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return state_ == State::kDone; }
  const util::Set& candidates() const { return candidates_; }

 private:
  enum class State { kStart, kAwaitSizes, kAwaitPeerImage, kDone };
  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  std::uint64_t universe_;
  util::Set input_;
  double target_failure_;
  State state_ = State::kStart;
  std::uint64_t peer_size_ = 0;
  std::optional<hashing::PairwiseHash> hash_;
  util::Set candidates_;
};

class BasicIntersectionBob final : public sim::Party {
 public:
  BasicIntersectionBob(sim::SharedRandomness shared, std::uint64_t nonce,
                       std::uint64_t universe, util::Set input,
                       double target_failure);
  std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) override;
  bool done() const override { return state_ == State::kDone; }
  const util::Set& candidates() const { return candidates_; }

 private:
  enum class State { kAwaitSizes, kAwaitImage, kDone };
  sim::SharedRandomness shared_;
  std::uint64_t nonce_;
  std::uint64_t universe_;
  util::Set input_;
  double target_failure_;
  State state_ = State::kAwaitSizes;
  std::uint64_t peer_size_ = 0;
  std::optional<hashing::PairwiseHash> hash_;
  util::Set candidates_;
};

}  // namespace setint::core
