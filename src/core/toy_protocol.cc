#include "core/toy_protocol.h"

#include <algorithm>
#include <cmath>

#include "core/basic_intersection.h"
#include "eq/equality.h"
#include "hashing/pairwise.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::core {

IntersectionOutput toy_bucket_intersection(sim::Channel& channel,
                                           const sim::SharedRandomness& shared,
                                           std::uint64_t nonce,
                                           std::uint64_t universe,
                                           util::SetView s, util::SetView t,
                                           ToyProtocolDiag* diag) {
  validate_instance(universe, s, t);
  const std::size_t k = std::max<std::size_t>({s.size(), t.size(), 2});
  const double log_k = std::max(2.0, std::log2(static_cast<double>(k)));
  const auto buckets = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(k) / log_k));

  // Bucket partition: every bucket holds O(log k) elements w.h.p.
  util::Rng bucket_stream = shared.stream("toy-buckets", nonce);
  const auto h =
      hashing::PairwiseHash::sample(bucket_stream, universe, buckets);
  std::vector<util::Set> sa(buckets);
  std::vector<util::Set> tb(buckets);
  for (std::uint64_t x : s) sa[h(x)].push_back(x);
  for (std::uint64_t y : t) tb[h(y)].push_back(y);
  for (auto& b : sa) std::sort(b.begin(), b.end());
  for (auto& b : tb) std::sort(b.begin(), b.end());

  // Per-bucket Basic-Intersection failure target ~1/log k (the paper's
  // g_i : [n] -> [log^3 k] range: m = O(log k) elements against ~log^3 k
  // slots), and O(log k)-bit verification (error 1/k^2).
  const double bi_failure = std::min(0.25, 4.0 / log_k);
  const auto verify_bits = static_cast<std::size_t>(2.0 * log_k);

  ToyProtocolDiag local;
  local.buckets = buckets;

  std::vector<std::size_t> pending(buckets);
  for (std::size_t u = 0; u < buckets; ++u) pending[u] = u;

  constexpr std::uint64_t kMaxIterations = 20;
  for (std::uint64_t iter = 0; iter < kMaxIterations && !pending.empty();
       ++iter) {
    local.iterations = iter + 1;
    // Re-run (or first-run) Basic-Intersection on all pending buckets.
    std::vector<std::pair<util::SetView, util::SetView>> pairs;
    pairs.reserve(pending.size());
    for (std::size_t u : pending) pairs.emplace_back(sa[u], tb[u]);
    const std::vector<CandidatePair> cands = basic_intersection_batch(
        channel, shared, util::mix64(nonce, util::mix64(0x70, iter)),
        universe, pairs, bi_failure);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      sa[pending[j]] = cands[j].s_candidate;
      tb[pending[j]] = cands[j].t_candidate;
    }
    local.total_reruns += iter == 0 ? 0 : pending.size();

    // Verification: one O(log k)-bit equality test per pending bucket.
    std::vector<util::BitBuffer> ca(pending.size());
    std::vector<util::BitBuffer> cb(pending.size());
    for (std::size_t j = 0; j < pending.size(); ++j) {
      util::append_set(ca[j], sa[pending[j]]);
      util::append_set(cb[j], tb[pending[j]]);
    }
    const std::vector<bool> pass = eq::batch_equality_test(
        channel, shared, util::mix64(nonce, util::mix64(0x7E, iter)), ca, cb,
        verify_bits);

    std::vector<std::size_t> still_pending;
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (!pass[j]) still_pending.push_back(pending[j]);
    }
    pending = std::move(still_pending);
  }

  // Exactness backstop for buckets that never verified (essentially never
  // reached): exchange their raw contents.
  if (!pending.empty()) {
    local.fallback_buckets = pending.size();
    util::BitBuffer a_msg;
    for (std::size_t u : pending) util::append_set(a_msg, sa[u]);
    const util::BitBuffer a_delivered =
        channel.send(sim::PartyId::kAlice, std::move(a_msg), "toy-fallback-a");
    util::BitBuffer b_msg;
    for (std::size_t u : pending) util::append_set(b_msg, tb[u]);
    const util::BitBuffer b_delivered =
        channel.send(sim::PartyId::kBob, std::move(b_msg), "toy-fallback-b");
    util::BitReader ra(a_delivered);
    util::BitReader rb(b_delivered);
    for (std::size_t u : pending) {
      const util::Set peer_s = util::read_set(ra);
      const util::Set peer_t = util::read_set(rb);
      sa[u] = util::set_intersection(sa[u], peer_t);
      tb[u] = util::set_intersection(tb[u], peer_s);
    }
  }

  IntersectionOutput out;
  for (std::size_t u = 0; u < buckets; ++u) {
    out.alice.insert(out.alice.end(), sa[u].begin(), sa[u].end());
    out.bob.insert(out.bob.end(), tb[u].begin(), tb[u].end());
  }
  std::sort(out.alice.begin(), out.alice.end());
  std::sort(out.bob.begin(), out.bob.end());
  if (diag != nullptr) *diag = local;
  return out;
}

RunResult ToyBucketProtocol::run(std::uint64_t seed, std::uint64_t universe,
                                 util::SetView s, util::SetView t) const {
  sim::Channel channel;
  sim::SharedRandomness shared(seed);
  RunResult r;
  r.output =
      toy_bucket_intersection(channel, shared, /*nonce=*/0, universe, s, t);
  r.cost = channel.cost();
  return r;
}

}  // namespace setint::core
