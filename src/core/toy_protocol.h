// The warm-up protocol from the paper's "Our Technique" section:
// O(k log log k) expected bits, a constant number of stages.
//
// Hash into k / log k buckets, so every bucket holds O(log k) elements
// w.h.p. Per bucket, run Basic-Intersection with a hash range of
// ~log^3 k (cost O(log k log log k) per bucket, correctness
// 1 - 1/Omega(log k)), then VERIFY each bucket's candidate pair with an
// O(log k)-bit equality test (error 1/k^C). Buckets whose verification
// fails re-run Basic-Intersection with fresh randomness; the expected
// number of re-runs per bucket is < 1, so the total expected
// communication is (k / log k) * O(log k log log k) = O(k log log k).
//
// This sits strictly between R^(1) = O(k log k) and the full
// verification tree, and is the conceptual stepping stone to it: the tree
// protocol replaces the per-bucket verification with a hierarchy of
// batched verifications.
#pragma once

#include <cstdint>

#include "core/protocol.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::core {

struct ToyProtocolDiag {
  std::uint64_t buckets = 0;
  std::uint64_t iterations = 0;       // verify/re-run sweeps executed
  std::uint64_t total_reruns = 0;     // Basic-Intersection re-runs
  std::uint64_t fallback_buckets = 0; // buckets resolved by plain exchange
};

IntersectionOutput toy_bucket_intersection(sim::Channel& channel,
                                           const sim::SharedRandomness& shared,
                                           std::uint64_t nonce,
                                           std::uint64_t universe,
                                           util::SetView s, util::SetView t,
                                           ToyProtocolDiag* diag = nullptr);

class ToyBucketProtocol final : public IntersectionProtocol {
 public:
  std::string name() const override { return "toy-buckets[k loglog k]"; }
  RunResult run(std::uint64_t seed, std::uint64_t universe, util::SetView s,
                util::SetView t) const override;
};

}  // namespace setint::core
