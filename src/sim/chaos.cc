#include "sim/chaos.h"

#include <algorithm>

namespace setint::sim {

namespace {

void check_probability(double p, const char* field) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument(std::string("ChaosSpec: ") + field +
                                " must be in [0, 1]");
  }
}

void check_schedule(const CrashSchedule& sched, const char* field) {
  check_probability(sched.crash_prob, field);
}

std::pair<std::size_t, std::size_t> link_key(std::size_t a, std::size_t b) {
  return {std::min(a, b), std::max(a, b)};
}

bool window_covers(const PartitionWindow& w, std::size_t a, std::size_t b) {
  if (w.a == kAllLinks) return true;
  const auto key = link_key(a, b);
  return link_key(w.a, w.b) == key;
}

}  // namespace

PlayerCrashError::PlayerCrashError(std::size_t player_in,
                                   std::uint64_t revive_tick_in,
                                   bool permanent_in)
    : std::runtime_error(
          permanent_in
              ? "chaos: player " + std::to_string(player_in) +
                    " crashed and never returns"
              : "chaos: player " + std::to_string(player_in) +
                    " crashed (up again at tick " +
                    std::to_string(revive_tick_in) + ")"),
      player(player_in),
      revive_tick(revive_tick_in),
      permanent(permanent_in) {}

LinkPartitionedError::LinkPartitionedError(std::size_t a_in, std::size_t b_in,
                                           std::uint64_t heal_tick_in)
    : std::runtime_error("chaos: link (" + std::to_string(a_in) + ", " +
                         std::to_string(b_in) + ") partitioned (heals at tick " +
                         std::to_string(heal_tick_in) + ")"),
      a(a_in),
      b(b_in),
      heal_tick(heal_tick_in) {}

bool ChaosSpec::enabled() const {
  if (crash.crash_prob > 0.0) return true;
  for (const auto& [player, sched] : crash_overrides) {
    (void)player;
    if (sched.crash_prob > 0.0) return true;
  }
  if (burst.enabled()) return true;
  for (const PartitionWindow& w : partitions) {
    if (w.end_tick > w.start_tick) return true;
  }
  return false;
}

ChaosPlan::ChaosPlan(const ChaosSpec& spec, std::uint64_t protocol_seed)
    : spec_(spec),
      protocol_seed_(protocol_seed),
      plan_seed_(util::mix64(spec.seed, protocol_seed)) {
  if (spec_.players < 2) {
    throw std::invalid_argument("ChaosSpec: players must be >= 2");
  }
  check_schedule(spec_.crash, "crash.crash_prob");
  for (const auto& [player, sched] : spec_.crash_overrides) {
    if (player >= spec_.players) {
      throw std::invalid_argument(
          "ChaosSpec: crash_overrides player out of range");
    }
    check_schedule(sched, "crash_overrides crash_prob");
  }
  check_probability(spec_.burst.p_good_to_bad, "burst.p_good_to_bad");
  check_probability(spec_.burst.p_bad_to_good, "burst.p_bad_to_good");
  check_probability(spec_.burst.loss_good, "burst.loss_good");
  check_probability(spec_.burst.loss_bad, "burst.loss_bad");
  check_probability(spec_.burst.flip_good, "burst.flip_good");
  check_probability(spec_.burst.flip_bad, "burst.flip_bad");
  for (const PartitionWindow& w : spec_.partitions) {
    if (w.end_tick < w.start_tick) {
      throw std::invalid_argument(
          "ChaosSpec: partition window end_tick < start_tick");
    }
    if (w.a != kAllLinks &&
        (w.a >= spec_.players || w.b >= spec_.players || w.a == w.b)) {
      throw std::invalid_argument("ChaosSpec: partition window names an "
                                  "invalid link");
    }
  }

  players_.reserve(spec_.players);
  for (std::size_t p = 0; p < spec_.players; ++p) {
    CrashSchedule sched = spec_.crash;
    for (const auto& [player, override_sched] : spec_.crash_overrides) {
      if (player == p) sched = override_sched;
    }
    players_.emplace_back(sched,
                          util::mix64(plan_seed_, util::mix64(0xC4A5, p)));
  }
}

void ChaosPlan::set_link_faults(std::size_t a, std::size_t b,
                                const FaultSpec& spec) {
  if (a >= spec_.players || b >= spec_.players || a == b) {
    throw std::invalid_argument("ChaosPlan: link endpoints out of range");
  }
  FaultSpec derived = spec;
  // Fold the link identity into the per-link stream so two links sharing a
  // spec draw independently; FaultPlan's own constructor validates the
  // probabilities.
  const auto key = link_key(a, b);
  derived.seed = util::mix64(plan_seed_,
                             util::mix64(spec.seed,
                                         util::mix64(key.first, key.second)));
  link_state(a, b).faults = std::make_unique<FaultPlan>(derived);
}

bool ChaosPlan::enabled() const {
  if (spec_.enabled()) return true;
  for (const auto& [key, state] : links_) {
    (void)key;
    if (state.faults != nullptr && state.faults->enabled()) return true;
  }
  return false;
}

bool ChaosPlan::corrupts_links() const {
  if (spec_.burst.enabled()) return true;
  for (const auto& [key, state] : links_) {
    (void)key;
    if (state.faults != nullptr && state.faults->enabled()) return true;
  }
  return false;
}

void ChaosPlan::advance_to(std::uint64_t tick) {
  now_ = std::max(now_, tick);
}

ChaosPlan::PlayerState& ChaosPlan::player_state(std::size_t p) {
  if (p >= players_.size()) {
    throw std::invalid_argument("ChaosPlan: player id out of range");
  }
  return players_[p];
}

ChaosPlan::LinkState& ChaosPlan::link_state(std::size_t a, std::size_t b) {
  const auto key = link_key(a, b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // The stream seed depends only on the link identity, so lazy creation
    // order cannot perturb determinism.
    it = links_
             .emplace(key, LinkState(util::mix64(
                               plan_seed_,
                               util::mix64(0x11CCu, util::mix64(key.first,
                                                                key.second)))))
             .first;
  }
  return it->second;
}

void ChaosPlan::check_crash(std::size_t p) {
  PlayerState& ps = player_state(p);
  if (ps.dead) {
    stats_.blocked_sends += 1;
    throw PlayerCrashError(p, 0, /*permanent=*/true);
  }
  if (ps.down_until > now_) {
    stats_.blocked_sends += 1;
    throw PlayerCrashError(p, ps.down_until, /*permanent=*/false);
  }
  if (ps.sched.crash_prob > 0.0 && ps.rng.unit() < ps.sched.crash_prob) {
    ps.crashes += 1;
    stats_.crashes += 1;
    stats_.blocked_sends += 1;
    if (ps.crashes > ps.sched.max_crashes) {
      ps.dead = true;
      stats_.permanent_losses += 1;
      throw PlayerCrashError(p, 0, /*permanent=*/true);
    }
    ps.down_until = now_ + ps.sched.restart_ticks;
    throw PlayerCrashError(p, ps.down_until, /*permanent=*/false);
  }
}

void ChaosPlan::on_send_attempt(std::size_t a, std::size_t b) {
  now_ += 1;
  stats_.ticks += 1;
  check_crash(a);
  check_crash(b);
  std::uint64_t heal = 0;
  for (const PartitionWindow& w : spec_.partitions) {
    if (window_covers(w, a, b) && w.start_tick <= now_ && now_ < w.end_tick) {
      heal = std::max(heal, w.end_tick);
    }
  }
  if (heal > 0) {
    stats_.partition_blocks += 1;
    stats_.blocked_sends += 1;
    throw LinkPartitionedError(a, b, heal);
  }
}

AppliedFaults ChaosPlan::corrupt(std::size_t a, std::size_t b,
                                 util::BitBuffer& payload) {
  AppliedFaults applied;
  LinkState& ls = link_state(a, b);
  if (spec_.burst.enabled()) {
    const double transition =
        ls.bad ? spec_.burst.p_bad_to_good : spec_.burst.p_good_to_bad;
    if (transition > 0.0 && ls.rng.unit() < transition) {
      ls.bad = !ls.bad;
      if (ls.bad) stats_.burst_state_entries += 1;
    }
    const double loss = ls.bad ? spec_.burst.loss_bad : spec_.burst.loss_good;
    const double flip = ls.bad ? spec_.burst.flip_bad : spec_.burst.flip_good;
    if (loss > 0.0 && ls.rng.unit() < loss) {
      applied.dropped = true;
      payload.clear();
      stats_.burst_drops += 1;
    } else if (flip > 0.0) {
      for (std::size_t i = 0; i < payload.size_bits(); ++i) {
        if (ls.rng.unit() < flip) {
          payload.toggle_bit(i);
          applied.bits_flipped += 1;
          stats_.burst_flipped_bits += 1;
        }
      }
    }
  }
  if (ls.faults != nullptr && ls.faults->enabled()) {
    const AppliedFaults f = ls.faults->apply(payload);
    applied.bits_flipped += f.bits_flipped;
    applied.truncated_bits += f.truncated_bits;
    applied.dropped = applied.dropped || f.dropped;
    applied.duplicated = applied.duplicated || f.duplicated;
    applied.delay_rounds += f.delay_rounds;
    stats_.link_fault_events += f.events();
  }
  if (applied.bits_flipped > 0 || applied.truncated_bits > 0 ||
      applied.dropped) {
    stats_.content_events += 1;
  }
  return applied;
}

bool ChaosPlan::player_dead(std::size_t p) const {
  return p < players_.size() && players_[p].dead;
}

bool ChaosPlan::player_up(std::size_t p) const {
  if (p >= players_.size()) return false;
  const PlayerState& ps = players_[p];
  return !ps.dead && ps.down_until <= now_;
}

}  // namespace setint::sim
