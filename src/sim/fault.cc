#include "sim/fault.h"

#include <stdexcept>

namespace setint::sim {

namespace {

void check_probability(double p, const char* field) {
  if (!(p >= 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultSpec: ") + field +
                                " must be in [0, 1]");
  }
}

}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec), rng_(spec.seed) {
  check_probability(spec.flip_per_bit, "flip_per_bit");
  check_probability(spec.truncate_prob, "truncate_prob");
  check_probability(spec.drop_prob, "drop_prob");
  check_probability(spec.duplicate_prob, "duplicate_prob");
  check_probability(spec.delay_prob, "delay_prob");
}

AppliedFaults FaultPlan::apply(util::BitBuffer& payload) {
  AppliedFaults applied;
  stats_.messages_seen += 1;
  if (!enabled()) return applied;

  if (spec_.drop_prob > 0.0 && rng_.unit() < spec_.drop_prob) {
    applied.dropped = true;
    payload.clear();
  } else if (spec_.truncate_prob > 0.0 && !payload.empty() &&
             rng_.unit() < spec_.truncate_prob) {
    // Cut at a uniform position in [0, size): at least one bit is lost.
    const std::size_t keep =
        static_cast<std::size_t>(rng_.below(payload.size_bits()));
    applied.truncated_bits = payload.size_bits() - keep;
    util::BitBuffer prefix;
    for (std::size_t i = 0; i < keep; ++i) prefix.append_bit(payload.bit(i));
    payload = std::move(prefix);
  }

  if (spec_.flip_per_bit > 0.0) {
    for (std::size_t i = 0; i < payload.size_bits(); ++i) {
      if (rng_.unit() < spec_.flip_per_bit) {
        payload.toggle_bit(i);
        applied.bits_flipped += 1;
      }
    }
  }

  if (spec_.duplicate_prob > 0.0 && rng_.unit() < spec_.duplicate_prob) {
    applied.duplicated = true;
  }
  if (spec_.delay_prob > 0.0 && rng_.unit() < spec_.delay_prob) {
    applied.delay_rounds = spec_.delay_rounds;
  }

  stats_.faults_injected += applied.events();
  stats_.bits_flipped += applied.bits_flipped;
  if (applied.bits_flipped > 0) stats_.flipped_messages += 1;
  if (applied.dropped) {
    stats_.dropped_messages += 1;
  } else if (applied.truncated_bits > 0) {
    stats_.truncated_messages += 1;
    stats_.truncated_bits += applied.truncated_bits;
  }
  if (applied.duplicated) stats_.duplicated_messages += 1;
  if (applied.delay_rounds > 0) {
    stats_.delayed_messages += 1;
    stats_.delay_rounds_charged += applied.delay_rounds;
  }
  return applied;
}

}  // namespace setint::sim
