#include "sim/runtime.h"

#include <stdexcept>

namespace setint::sim {

void run_two_party(Channel& channel, Party& alice, Party& bob,
                   std::size_t max_messages) {
  std::optional<util::BitBuffer> in_flight = alice.start();
  PartyId sender = PartyId::kAlice;
  std::size_t messages = 0;
  while (in_flight.has_value()) {
    if (++messages > max_messages) {
      throw std::runtime_error("run_two_party: message budget exceeded");
    }
    const util::BitBuffer delivered =
        channel.send(sender, std::move(*in_flight));
    Party& receiver = sender == PartyId::kAlice ? bob : alice;
    in_flight = receiver.on_message(delivered);
    sender = other(sender);
  }
  if (!alice.done() || !bob.done()) {
    throw std::runtime_error(
        "run_two_party: conversation stalled before both parties finished");
  }
}

}  // namespace setint::sim
