// Byzantine-peer model: one party emits crafted frames.
//
// sim/fault.h models a *stochastic* adversary — an unreliable link that
// damages honest frames at random. An Adversary upgrades the threat
// model: it replaces one party (or one multiparty player) and substitutes
// whatever that party's honest protocol code would have sent with frames
// *crafted* to abuse the decoders on the other side — inflated length
// prefixes, pathological unary runs, replayed frames, random garbage,
// and valid-format-but-lying payloads. Because the adversary IS the
// sender, it computes valid integrity checksums for its own frames, so
// the channel's framing (which defeats the stochastic model) gives no
// protection here; the honest side survives on resource limits
// (core/resource_limits.h), the hardened decoders, and the certificate /
// retry / degradation machinery. The contract the tests and
// bench/exp_adversary pin (docs/ROBUSTNESS.md, "Threat model"):
//
//   * the honest party never crashes, hangs, or allocates unboundedly;
//   * its output is always a subset of its own input;
//   * a Byzantine party can corrupt only results derived from its own
//     input — multiparty runs between honest players stay verified.
//
// Like FaultPlan, every decision comes from a private seeded Rng, so an
// attack stream is reproducible from its seed alone (the
// BENCH_adversary.json determinism contract).
#pragma once

#include <cstdint>

#include "sim/transcript.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint::sim {

// One structure-aware attack shape; kMixed rotates pseudo-randomly.
enum class AttackClass : int {
  kNone = 0,
  kInflatedLength,  // huge-but-decodable gamma length prefix + dense tail
  kUnaryBomb,       // all-zeros / all-ones frames (gamma + Rice torture)
  kRandomGarbage,   // seeded random bits of frame_bits length
  kReplay,          // re-send a previous frame from this party
  kTruncate,        // the honest frame cut at a random position
  kSemanticLie,     // valid set encoding of fabricated elements
  kMixed,           // rotate through all of the above per message
};

const char* attack_class_name(AttackClass attack);

struct AdversarySpec {
  // Which side of a two-party channel lies. Multiparty protocols rebind
  // this per pairwise sub-run via Adversary::set_party so a single
  // Byzantine player index maps onto the correct channel role.
  PartyId party = PartyId::kBob;
  AttackClass attack = AttackClass::kMixed;
  // Per-message probability of substituting a crafted frame; messages
  // that are not attacked pass through untouched (a stealthy adversary).
  double attack_prob = 1.0;
  // Size scale in bits for crafted frames (inflated-length, unary-bomb,
  // garbage). Bounded work per frame: decoding never exceeds O(frame_bits).
  std::uint64_t frame_bits = 1u << 14;
  // Universe the semantic-lie fabricated sets draw from.
  std::uint64_t lie_universe = 1u << 20;
  std::uint64_t seed = 0xadff;
};

struct AdversaryStats {
  std::uint64_t frames_seen = 0;     // messages from the Byzantine party
  std::uint64_t frames_crafted = 0;  // of those, how many were replaced
  std::uint64_t inflated_lengths = 0;
  std::uint64_t unary_bombs = 0;
  std::uint64_t garbage_frames = 0;
  std::uint64_t replays = 0;
  std::uint64_t truncations = 0;
  std::uint64_t semantic_lies = 0;
};

class Adversary {
 public:
  Adversary() : Adversary(AdversarySpec{}) {}
  explicit Adversary(const AdversarySpec& spec);

  const AdversarySpec& spec() const { return spec_; }
  const AdversaryStats& stats() const { return stats_; }
  bool enabled() const {
    return spec_.attack != AttackClass::kNone && spec_.attack_prob > 0.0;
  }

  // True iff frames sent by `from` are under this adversary's control.
  bool controls(PartyId from) const { return from == spec_.party; }

  // Rebind which channel role the Byzantine party plays (multiparty
  // wrappers call this when the same lying player is Alice in one pair
  // and Bob in another). The attack Rng stream is unaffected.
  void set_party(PartyId party) { spec_.party = party; }

  // Called by Channel::send for every frame from the controlled party,
  // BEFORE integrity framing (the adversary is the sender and would
  // checksum its own bytes). May replace `payload` with a crafted frame.
  // Returns the attack applied, kNone if the frame passed untouched.
  AttackClass craft(util::BitBuffer& payload);

 private:
  void craft_inflated_length(util::BitBuffer& payload);
  void craft_unary_bomb(util::BitBuffer& payload);
  void craft_garbage(util::BitBuffer& payload);
  void craft_replay(util::BitBuffer& payload);
  void craft_truncate(util::BitBuffer& payload);
  void craft_semantic_lie(util::BitBuffer& payload);

  AdversarySpec spec_;
  util::Rng rng_;
  AdversaryStats stats_;
  util::BitBuffer last_frame_;  // most recent pre-attack frame, for replay
};

}  // namespace setint::sim
