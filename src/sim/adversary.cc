#include "sim/adversary.h"

#include <stdexcept>
#include <utility>

#include "util/set_util.h"

namespace setint::sim {

const char* attack_class_name(AttackClass attack) {
  switch (attack) {
    case AttackClass::kNone: return "none";
    case AttackClass::kInflatedLength: return "inflated-length";
    case AttackClass::kUnaryBomb: return "unary-bomb";
    case AttackClass::kRandomGarbage: return "random-garbage";
    case AttackClass::kReplay: return "replay";
    case AttackClass::kTruncate: return "truncate";
    case AttackClass::kSemanticLie: return "semantic-lie";
    case AttackClass::kMixed: return "mixed";
  }
  return "unknown";
}

Adversary::Adversary(const AdversarySpec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (!(spec.attack_prob >= 0.0) || !(spec.attack_prob <= 1.0)) {
    throw std::invalid_argument(
        "AdversarySpec: attack_prob must be in [0, 1]");
  }
  if (spec.frame_bits == 0) {
    throw std::invalid_argument("AdversarySpec: frame_bits must be > 0");
  }
  if (spec.lie_universe < 2) {
    throw std::invalid_argument("AdversarySpec: lie_universe must be >= 2");
  }
}

AttackClass Adversary::craft(util::BitBuffer& payload) {
  stats_.frames_seen += 1;
  // Remember the honest frame first so a later replay attack can re-send
  // genuine (stale) protocol bytes, not just crafted ones.
  const util::BitBuffer honest = payload;
  if (!enabled() ||
      (spec_.attack_prob < 1.0 && rng_.unit() >= spec_.attack_prob)) {
    last_frame_ = honest;
    return AttackClass::kNone;
  }

  AttackClass attack = spec_.attack;
  if (attack == AttackClass::kMixed) {
    static constexpr AttackClass kRotation[] = {
        AttackClass::kInflatedLength, AttackClass::kUnaryBomb,
        AttackClass::kRandomGarbage,  AttackClass::kReplay,
        AttackClass::kTruncate,       AttackClass::kSemanticLie,
    };
    attack = kRotation[rng_.below(std::size(kRotation))];
  }

  switch (attack) {
    case AttackClass::kInflatedLength:
      craft_inflated_length(payload);
      stats_.inflated_lengths += 1;
      break;
    case AttackClass::kUnaryBomb:
      craft_unary_bomb(payload);
      stats_.unary_bombs += 1;
      break;
    case AttackClass::kRandomGarbage:
      craft_garbage(payload);
      stats_.garbage_frames += 1;
      break;
    case AttackClass::kReplay:
      craft_replay(payload);
      stats_.replays += 1;
      break;
    case AttackClass::kTruncate:
      craft_truncate(payload);
      stats_.truncations += 1;
      break;
    case AttackClass::kSemanticLie:
      craft_semantic_lie(payload);
      stats_.semantic_lies += 1;
      break;
    case AttackClass::kNone:
    case AttackClass::kMixed:
      last_frame_ = honest;
      return AttackClass::kNone;
  }
  stats_.frames_crafted += 1;
  last_frame_ = honest;
  return attack;
}

// gamma64(N) followed by N one-bits decodes (as a set) to {0, 1, ..., N-1}
// — a perfectly valid canonical set of frame_bits items from a frame of
// ~frame_bits bits. Without a max_decoded_items cap the honest decoder
// materializes all of it; this is the allocation-amplification attack the
// limits exist for (bench/exp_adversary pins that it actually bites).
void Adversary::craft_inflated_length(util::BitBuffer& payload) {
  payload.clear();
  const std::uint64_t claimed = spec_.frame_bits;
  payload.append_gamma64(claimed);
  for (std::uint64_t i = 0; i < claimed; ++i) payload.append_bit(true);
}

// Alternating all-zeros / all-ones frames: zeros drive gamma decoders into
// their 63-bit zero-run cap, ones drive Rice decoders into maximal unary
// scans (and read as a giant inflated gamma value where a length prefix is
// expected).
void Adversary::craft_unary_bomb(util::BitBuffer& payload) {
  payload.clear();
  const bool ones = rng_.coin();
  for (std::uint64_t i = 0; i < spec_.frame_bits; ++i) {
    payload.append_bit(ones);
  }
}

void Adversary::craft_garbage(util::BitBuffer& payload) {
  payload.clear();
  // Random length in [1, frame_bits] so short-frame (out-of-bits) and
  // long-frame (trailing junk) decode paths are both exercised.
  const std::uint64_t len = 1 + rng_.below(spec_.frame_bits);
  for (std::uint64_t i = 0; i < len; ++i) payload.append_bit(rng_.coin());
}

// Re-send the previous frame from this party — a stale-state / reordering
// attack. The first message of a run has nothing to replay; it degenerates
// to an empty frame (a drop), which is also a frame the peer never asked
// for.
void Adversary::craft_replay(util::BitBuffer& payload) {
  payload = last_frame_;
}

void Adversary::craft_truncate(util::BitBuffer& payload) {
  if (payload.empty()) return;
  const std::size_t keep =
      static_cast<std::size_t>(rng_.below(payload.size_bits()));
  util::BitBuffer prefix;
  for (std::size_t i = 0; i < keep; ++i) prefix.append_bit(payload.bit(i));
  payload = std::move(prefix);
}

// A frame that decodes cleanly as a canonical set — correct format,
// fabricated content. Downstream this models a peer lying about its input
// (claiming elements it does not hold, hiding ones it does): the decoders
// accept it, so only the semantic defenses (certificates, the
// own-input-subset invariant) contain the damage.
void Adversary::craft_semantic_lie(util::BitBuffer& payload) {
  payload.clear();
  const std::uint64_t size =
      1 + rng_.below(std::min<std::uint64_t>(64, spec_.lie_universe));
  util::Rng lie_rng(rng_.next());
  const util::Set lie = util::random_set(lie_rng, spec_.lie_universe,
                                         static_cast<std::size_t>(size));
  util::append_set(payload, lie);
}

}  // namespace setint::sim
