#include "sim/channel.h"

#include "obs/recorder.h"
#include "obs/tracer.h"

namespace setint::sim {

Channel::Channel(bool record_transcript) {
  if (record_transcript) transcript_ = std::make_unique<Transcript>();
}

namespace {

constexpr unsigned kChecksumBits = 32;

std::uint64_t checksum_of(const util::BitBuffer& payload) {
  return payload.fingerprint() & ((std::uint64_t{1} << kChecksumBits) - 1);
}

}  // namespace

util::BitBuffer Channel::send(PartyId from, util::BitBuffer payload,
                              std::string label) {
  // Byzantine substitution happens first: the adversary IS the sender, so
  // anything added below (integrity framing, metering) applies to the
  // crafted frame exactly as it would to an honest one.
  if (adversary_ != nullptr && adversary_->controls(from)) {
    const AttackClass attack = adversary_->craft(payload);
    if (attack != AttackClass::kNone && tracer_ != nullptr) {
      obs::count(tracer_, "adversary.crafted");
      obs::count(tracer_,
                 std::string("adversary.") + attack_class_name(attack));
    }
  }
  // Chaos gate: a crashed endpoint or partitioned link refuses the send
  // BEFORE metering — the frame never left the sender, so no bits are
  // charged. The recovery layer catches, waits out the outage, and
  // resumes from the last checkpoint.
  const bool chaotic = chaos_ != nullptr && chaos_->enabled();
  if (chaotic) {
    try {
      chaos_->on_send_attempt(chaos_a_, chaos_b_);
    } catch (const PlayerCrashError& e) {
      obs::count(tracer_, "chaos.crash_blocks");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kCrash, label,
                          static_cast<int>(e.player), 0, cost_.bits_total);
      }
      throw;
    } catch (const LinkPartitionedError&) {
      obs::count(tracer_, "chaos.partition_blocks");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kPartition, label,
                          index(from), 0, cost_.bits_total);
      }
      throw;
    }
  }
  const bool faulty = fault_plan_ != nullptr && fault_plan_->enabled();
  const bool framed =
      faulty || (chaotic && chaos_->corrupts_links());
  if (framed) {
    // Integrity frame: body + 32-bit checksum, transmitted (and billed)
    // like any other bits.
    payload.append_bits(checksum_of(payload), kChecksumBits);
  }
  const std::uint64_t sent_bits = payload.size_bits();
  cost_.bits_total += sent_bits;
  if (from == PartyId::kAlice) {
    cost_.bits_from_alice += sent_bits;
  } else {
    cost_.bits_from_bob += sent_bits;
  }
  cost_.messages += 1;
  const bool new_round = !has_last_direction_ || last_direction_ != from;
  if (new_round) {
    cost_.rounds += 1;
    has_last_direction_ = true;
    last_direction_ = from;
  }
  if (tracer_ != nullptr) {
    tracer_->on_message(from, sent_bits, new_round, label);
  }
  if (recorder_ != nullptr) {
    recorder_->record(obs::FlightEventKind::kMessage, label, index(from),
                      static_cast<std::uint32_t>(sent_bits),
                      cost_.bits_total);
  }

  // Resource limits fire after metering: the bandwidth was spent (the
  // attacker pays for its frame like everyone else) but the receiver
  // refuses to decode it. The throw lands in the retry layer.
  if (limits_ != nullptr && limits_->enabled()) {
    if (limits_->max_message_bits > 0 &&
        sent_bits > limits_->max_message_bits) {
      obs::count(tracer_, "limit.message_bits_breaches");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kLimitBreach, label,
                          index(from), 0, cost_.bits_total);
        recorder_->incident("limit: max_message_bits");
      }
      throw core::ResourceLimitError(
          "max_message_bits: frame of " + std::to_string(sent_bits) +
          " bits exceeds the " + std::to_string(limits_->max_message_bits) +
          "-bit cap (" + label + ")");
    }
    if (limits_->max_total_bits > 0 &&
        cost_.bits_total > limits_->max_total_bits) {
      obs::count(tracer_, "limit.total_bits_breaches");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kLimitBreach, label,
                          index(from), 0, cost_.bits_total);
        recorder_->incident("limit: max_total_bits");
      }
      throw core::ResourceLimitError(
          "max_total_bits: run total of " + std::to_string(cost_.bits_total) +
          " bits exceeds the " + std::to_string(limits_->max_total_bits) +
          "-bit cap (" + label + ")");
    }
    if (limits_->max_rounds > 0 && cost_.rounds > limits_->max_rounds) {
      obs::count(tracer_, "limit.rounds_breaches");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kLimitBreach, label,
                          index(from), 0, cost_.bits_total);
        recorder_->incident("limit: max_rounds");
      }
      throw core::ResourceLimitError(
          "max_rounds: round " + std::to_string(cost_.rounds) +
          " exceeds the " + std::to_string(limits_->max_rounds) +
          "-round cap (" + label + ")");
    }
  }

  if (framed) {
    // The sender's transmission is metered above; the plans now decide
    // what the receiver observes and what extra cost the link charges.
    // Order is load-bearing for bit-identity: the iid fault plan draws
    // first (exactly as before the chaos layer existed), then the chaos
    // plan's link-level damage lands on top.
    AppliedFaults plan_faults;
    if (faulty) plan_faults = fault_plan_->apply(payload);
    AppliedFaults chaos_faults;
    if (chaotic) chaos_faults = chaos_->corrupt(chaos_a_, chaos_b_, payload);
    AppliedFaults f = plan_faults;
    f.bits_flipped += chaos_faults.bits_flipped;
    f.truncated_bits += chaos_faults.truncated_bits;
    f.dropped = f.dropped || chaos_faults.dropped;
    f.duplicated = f.duplicated || chaos_faults.duplicated;
    f.delay_rounds += chaos_faults.delay_rounds;
    if (f.duplicated) {
      // The same frame crosses the link twice. The receiver's decode API
      // sees one copy, but the bandwidth is spent and billed.
      cost_.bits_total += sent_bits;
      if (from == PartyId::kAlice) {
        cost_.bits_from_alice += sent_bits;
      } else {
        cost_.bits_from_bob += sent_bits;
      }
      cost_.messages += 1;
      if (tracer_ != nullptr) {
        tracer_->on_message(from, sent_bits, false, label + " [dup]");
      }
    }
    if (f.delay_rounds > 0) charge_extra_rounds(f.delay_rounds);
    if (recorder_ != nullptr && f.events() > 0) {
      std::string what;
      if (f.bits_flipped > 0) what += "flip ";
      if (f.truncated_bits > 0) what += "trunc ";
      if (f.dropped) what += "drop ";
      if (f.duplicated) what += "dup ";
      if (f.delay_rounds > 0) what += "delay ";
      what.pop_back();
      recorder_->record(obs::FlightEventKind::kFault, what, index(from), 0,
                        cost_.bits_total);
    }
    if (tracer_ != nullptr) {
      // fault.* stays attributed to the iid plan alone (pre-chaos metric
      // meanings are pinned by tests); chaos link damage gets its own
      // family.
      obs::count(tracer_, "fault.injected", plan_faults.events());
      if (plan_faults.bits_flipped > 0) {
        obs::count(tracer_, "fault.flipped_bits", plan_faults.bits_flipped);
      }
      if (plan_faults.truncated_bits > 0) {
        obs::count(tracer_, "fault.truncations");
      }
      if (plan_faults.dropped) obs::count(tracer_, "fault.drops");
      if (plan_faults.duplicated) obs::count(tracer_, "fault.duplicates");
      if (plan_faults.delay_rounds > 0) {
        obs::count(tracer_, "fault.delay_rounds", plan_faults.delay_rounds);
      }
      if (chaos_faults.events() > 0) {
        obs::count(tracer_, "chaos.link_faults", chaos_faults.events());
      }
      if (chaos_faults.bits_flipped > 0) {
        obs::count(tracer_, "chaos.flipped_bits", chaos_faults.bits_flipped);
      }
      if (chaos_faults.dropped) obs::count(tracer_, "chaos.drops");
    }

    // Delivery-side integrity check: strip the checksum and verify it
    // against the (possibly corrupted) body. Any damage — flips,
    // truncation, a drop — fails here with probability 1 - 2^-32.
    if (payload.size_bits() < kChecksumBits) {
      obs::count(tracer_, "fault.integrity_failures");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kIntegrityFailure, label,
                          index(from), 0, cost_.bits_total);
        recorder_->incident("integrity: frame lost");
      }
      throw ChannelIntegrityError("channel: frame lost in flight (" + label +
                                  ")");
    }
    const std::size_t body_bits = payload.size_bits() - kChecksumBits;
    std::uint64_t delivered_sum = 0;
    for (unsigned i = 0; i < kChecksumBits; ++i) {
      if (payload.bit(body_bits + i)) delivered_sum |= std::uint64_t{1} << i;
    }
    // Strip the frame in place — truncate normalizes the tail word, so
    // the body the receiver decodes is bit- and word-identical to one
    // built from scratch (no per-message re-copy).
    payload.truncate(body_bits);
    if (delivered_sum != checksum_of(payload)) {
      obs::count(tracer_, "fault.integrity_failures");
      if (recorder_ != nullptr) {
        recorder_->record(obs::FlightEventKind::kIntegrityFailure, label,
                          index(from), 0, cost_.bits_total);
        recorder_->incident("integrity: checksum mismatch");
      }
      throw ChannelIntegrityError("channel: frame checksum mismatch (" +
                                  label + ")");
    }
  }

  // Fold every delivered body into the recorder's running transcript
  // digest — the bit-for-bit equality tools/replay asserts between an
  // incident's original session and its re-execution.
  if (recorder_ != nullptr) recorder_->mix_payload(payload.fingerprint());
  if (digest_enabled_) digest_ = fold_digest(digest_, from, payload.fingerprint());
  if (transcript_) transcript_->record(from, payload, std::move(label));
  return payload;
}

void Channel::charge_extra_rounds(std::uint64_t rounds) {
  if (rounds == 0) return;
  cost_.rounds += rounds;
  if (tracer_ != nullptr) {
    CostStats latency;
    latency.rounds = rounds;
    tracer_->on_cost(latency);
  }
  if (limits_ != nullptr && limits_->max_rounds > 0 &&
      cost_.rounds > limits_->max_rounds) {
    obs::count(tracer_, "limit.rounds_breaches");
    if (recorder_ != nullptr) {
      recorder_->record(obs::FlightEventKind::kLimitBreach, "latency charge",
                        -1, 0, cost_.bits_total);
      recorder_->incident("limit: max_rounds (latency)");
    }
    throw core::ResourceLimitError(
        "max_rounds: latency charge brings the run to " +
        std::to_string(cost_.rounds) + " rounds, cap " +
        std::to_string(limits_->max_rounds));
  }
}

}  // namespace setint::sim
