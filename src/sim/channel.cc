#include "sim/channel.h"

#include "obs/tracer.h"

namespace setint::sim {

Channel::Channel(bool record_transcript) {
  if (record_transcript) transcript_ = std::make_unique<Transcript>();
}

util::BitBuffer Channel::send(PartyId from, util::BitBuffer payload,
                              std::string label) {
  cost_.bits_total += payload.size_bits();
  if (from == PartyId::kAlice) {
    cost_.bits_from_alice += payload.size_bits();
  } else {
    cost_.bits_from_bob += payload.size_bits();
  }
  cost_.messages += 1;
  const bool new_round = !has_last_direction_ || last_direction_ != from;
  if (new_round) {
    cost_.rounds += 1;
    has_last_direction_ = true;
    last_direction_ = from;
  }
  if (tracer_ != nullptr) {
    tracer_->on_message(from, payload.size_bits(), new_round, label);
  }
  if (transcript_) transcript_->record(from, payload, std::move(label));
  return payload;
}

}  // namespace setint::sim
