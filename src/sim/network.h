// m-party message-passing model (the model of [BEO+13, PVZ12], Section 4).
//
// Any player may message any other. Multi-party protocols in this library
// are compositions of two-party sub-protocols, each run on its own Channel;
// the Network aggregates their costs per player and tracks rounds in
// "parallel batches": sub-protocols declared part of one batch run
// concurrently, so the batch contributes the MAX of their round counts.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/transcript.h"

namespace setint::obs {
class Tracer;
}  // namespace setint::obs

namespace setint::sim {

struct PlayerCost {
  std::uint64_t bits_sent = 0;
  std::uint64_t bits_received = 0;
  std::uint64_t bits_touched() const { return bits_sent + bits_received; }
};

class Network {
 public:
  explicit Network(std::size_t players) : players_(players) {
    if (players == 0) throw std::invalid_argument("Network: zero players");
    costs_.resize(players);
  }

  std::size_t players() const { return players_; }

  // Bill a completed two-party sub-protocol between players a (the channel's
  // Alice) and b (Bob).
  void bill_pairwise(std::size_t a, std::size_t b, const CostStats& cost);

  // Parallel-batch round accounting: protocols call begin_batch(), bill the
  // pairwise conversations that ran concurrently via bill_pairwise_in_batch,
  // then end_batch() adds the widest conversation's rounds to the network
  // round count.
  void begin_batch();
  void bill_pairwise_in_batch(std::size_t a, std::size_t b,
                              const CostStats& cost);
  void end_batch();

  const PlayerCost& player(std::size_t i) const { return costs_.at(i); }
  std::uint64_t total_bits() const { return total_bits_; }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t max_player_bits() const;
  double average_player_bits() const;

  // Optional observability: every bill_pairwise is attributed to the
  // tracer's current span and recorded in the "net.*" metrics. Not owned.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  // Optional unreliable-transport model (not owned): the Network never
  // sees payloads itself, but multiparty protocols install this plan on
  // every internal two-party Channel, so one deterministic fault stream
  // covers the whole m-party run (see sim/fault.h).
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

  // Optional topology-level chaos model (not owned): crash/restart
  // schedules, partition windows, bursty links (sim/chaos.h). Installed on
  // every internal two-party Channel with the real player ids as
  // endpoints, so one deterministic chaos stream covers the whole m-party
  // run and a crashed player affects every pair it appears in.
  void set_chaos_plan(ChaosPlan* plan) { chaos_plan_ = plan; }
  ChaosPlan* chaos_plan() const { return chaos_plan_; }

 private:
  void check_ids(std::size_t a, std::size_t b) const;

  std::size_t players_;
  std::vector<PlayerCost> costs_;
  std::uint64_t total_bits_ = 0;
  std::uint64_t rounds_ = 0;
  bool in_batch_ = false;
  std::uint64_t batch_max_rounds_ = 0;
  obs::Tracer* tracer_ = nullptr;
  FaultPlan* fault_plan_ = nullptr;
  ChaosPlan* chaos_plan_ = nullptr;
};

}  // namespace setint::sim
