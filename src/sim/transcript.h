// Cost accounting and transcript recording for simulated protocols.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/bitio.h"

namespace setint::sim {

enum class PartyId : int { kAlice = 0, kBob = 1 };

constexpr PartyId other(PartyId p) {
  return p == PartyId::kAlice ? PartyId::kBob : PartyId::kAlice;
}

constexpr int index(PartyId p) { return static_cast<int>(p); }

// Communication cost of a (two-party) protocol execution.
//
// Round counting follows the paper: each message is one round, but a
// maximal batch of consecutive messages in the SAME direction counts as a
// single round (they could be concatenated into one message). With that
// convention the Fact 3.5 equality test costs 2 rounds and
// Basic-Intersection costs 4, giving 6 per stage of the main protocol.
struct CostStats {
  std::uint64_t bits_total = 0;
  std::uint64_t bits_from_alice = 0;
  std::uint64_t bits_from_bob = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;

  CostStats& operator+=(const CostStats& o);
  bool operator==(const CostStats& o) const = default;

  // e.g. "CostStats{bits=1234 (alice 600, bob 634), messages=8, rounds=4}"
  // so test failures show cost diffs instead of opaque asserts.
  std::string ToString() const;
};

// GoogleTest and iostream printing support.
std::ostream& operator<<(std::ostream& os, const CostStats& c);

// Transcript-digest fold, shared between Transcript::digest() (post-hoc,
// over stored entries) and Channel's opt-in streaming digest (folded per
// delivered message, no storage). Keeping one definition is what makes
// "streaming digest == Transcript::digest()" an identity, not a test.
inline constexpr std::uint64_t kTranscriptDigestSeed = 0x5ee7ab1eu;
std::uint64_t fold_digest(std::uint64_t h, PartyId from,
                          std::uint64_t payload_fingerprint);

// Optional bit-exact record of every message (for tests and debugging).
struct TranscriptEntry {
  PartyId from;
  util::BitBuffer payload;
  std::string label;

  bool operator==(const TranscriptEntry& o) const = default;
};

class Transcript {
 public:
  void record(PartyId from, const util::BitBuffer& payload,
              std::string label);
  const std::vector<TranscriptEntry>& entries() const { return entries_; }

  // Order-sensitive digest of all payloads; equal transcripts hash equal.
  std::uint64_t digest() const;

  bool operator==(const Transcript& o) const { return entries_ == o.entries_; }

  // One line per message ("#3 bob  17 bits  'eq-verdicts'") plus a summary
  // header — readable test-failure output for transcript mismatches.
  std::string ToString() const;

 private:
  std::vector<TranscriptEntry> entries_;
};

std::ostream& operator<<(std::ostream& os, const Transcript& t);

}  // namespace setint::sim
