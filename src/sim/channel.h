// The simulated two-party channel.
//
// Protocol implementations are written driver-style: one function sees both
// parties' private state, but every inter-party data flow MUST pass through
// Channel::send(), which meters bits, messages and rounds. The returned
// buffer is what the peer decodes — reading data that was never sent is
// structurally impossible, which keeps the accounting honest.
//
// An optional obs::Tracer attributes every metered send to the tracer's
// current phase-span stack (see obs/tracer.h); with no tracer installed the
// hook is a single null-pointer test.
#pragma once

#include <memory>
#include <string>

#include "sim/transcript.h"
#include "util/bitio.h"

namespace setint::obs {
class Tracer;
}  // namespace setint::obs

namespace setint::sim {

class Channel {
 public:
  // record_transcript: keep a bit-exact copy of every message (memory-heavy
  // for large runs; tests only).
  explicit Channel(bool record_transcript = false);

  // Delivers `payload` from `from` to the other party and returns it for
  // decoding. Zero-bit payloads are allowed but still count as a message
  // (and advance the round on a direction change) — see the "metering
  // conventions" section of docs/PROTOCOL.md.
  util::BitBuffer send(PartyId from, util::BitBuffer payload,
                       std::string label = {});

  const CostStats& cost() const { return cost_; }

  // Transcript if recording was enabled, else nullptr.
  const Transcript* transcript() const { return transcript_.get(); }

  // Install (or clear, with nullptr) a tracer; not owned, must outlive the
  // channel's sends.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  CostStats cost_;
  bool has_last_direction_ = false;
  PartyId last_direction_ = PartyId::kAlice;
  std::unique_ptr<Transcript> transcript_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace setint::sim
