// The simulated two-party channel.
//
// Protocol implementations are written driver-style: one function sees both
// parties' private state, but every inter-party data flow MUST pass through
// Channel::send(), which meters bits, messages and rounds. The returned
// buffer is what the peer decodes — reading data that was never sent is
// structurally impossible, which keeps the accounting honest.
//
// An optional obs::Tracer attributes every metered send to the tracer's
// current phase-span stack (see obs/tracer.h); with no tracer installed the
// hook is a single null-pointer test.
//
// An optional sim::FaultPlan makes the transport adversarial: after the
// sender's bits are metered, the plan may corrupt what the receiver
// decodes (flip/truncate/drop) and charge extra cost (duplicate bits,
// latency rounds). Injected faults are attributed to the current tracer
// phase and counted under the fault.* metrics — see docs/ROBUSTNESS.md.
//
// Integrity framing: with a fault plan active, every message is framed
// with a 32-bit content checksum (charged to the sender like any other
// bits). A frame damaged in flight fails the check on delivery and send()
// throws ChannelIntegrityError instead of handing corrupted bits to the
// decoder — the retry layer treats it like any decode failure. This is
// load-bearing for soundness: without it, a corrupted hashed image can
// knock a true element out of one party's candidate at stage i, after
// which stage i+1's honest Basic-Intersection rerun removes it from the
// OTHER party too, and the final certificate passes on equal-but-wrong
// candidates. The checksum caps that silent path at ~2^-32 per message.
// Byzantine hardening (docs/ROBUSTNESS.md): an optional sim::Adversary
// lets one party substitute crafted frames for its honest messages
// (crafting happens sender-side, BEFORE integrity framing — a Byzantine
// sender checksums its own bytes, so framing cannot catch it), and an
// optional core::ResourceLimits bounds what the honest side will accept:
// per-frame size, per-run bits and rounds at the channel, decoded items
// via Channel::reader(). Breaches throw core::ResourceLimitError, which
// the retry layer treats like any decode failure.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "core/resource_limits.h"
#include "sim/adversary.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "sim/transcript.h"
#include "util/arena.h"
#include "util/bitio.h"

namespace setint::obs {
class FlightRecorder;
class Tracer;
}  // namespace setint::obs

namespace setint::sim {

// A message's integrity frame failed verification on delivery (corrupted,
// truncated, or dropped in flight). Counted under "fault.integrity_failures".
struct ChannelIntegrityError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Channel {
 public:
  // record_transcript: keep a bit-exact copy of every message (memory-heavy
  // for large runs; tests only).
  explicit Channel(bool record_transcript = false);

  // Delivers `payload` from `from` to the other party and returns it for
  // decoding. Zero-bit payloads are allowed but still count as a message
  // (and advance the round on a direction change) — see the "metering
  // conventions" section of docs/PROTOCOL.md.
  util::BitBuffer send(PartyId from, util::BitBuffer payload,
                       std::string label = {});

  const CostStats& cost() const { return cost_; }

  // Transcript if recording was enabled, else nullptr.
  const Transcript* transcript() const { return transcript_.get(); }

  // Opt-in streaming transcript digest: folds every delivered body with
  // sim::fold_digest at the exact point a recording channel would store
  // it, so digest() always equals what Transcript::digest() would return
  // — without the O(total bits) storage. This is what lets the sans-IO
  // scheduler hold 10^4-10^6 concurrent sessions and still assert
  // bit-identity against the blocking reference (docs/PROTOCOL.md,
  // "Sans-IO engine"). Off by default: the fingerprint fold costs a pass
  // over each payload, which the exp_cpu hot-path gates must not pay.
  void enable_digest() { digest_enabled_ = true; }
  bool digest_enabled() const { return digest_enabled_; }
  std::uint64_t digest() const { return digest_; }

  // Install (or clear, with nullptr) a tracer; not owned, must outlive the
  // channel's sends.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  // Install (or clear) a flight recorder (obs/recorder.h); not owned. Every
  // metered send, injected fault, integrity failure and limit breach is
  // recorded into the ring at O(1) cost; integrity failures and breaches
  // also trigger FlightRecorder::incident(), which auto-dumps the last-N
  // window if a dump path is configured. Same single-thread session
  // affinity as the tracer.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }
  obs::FlightRecorder* recorder() const { return recorder_; }

  // Install (or clear) a fault plan; not owned. The plan is stateful (its
  // Rng advances per message), so sharing one plan across channels is how
  // multiparty runs keep a single deterministic fault stream.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

  // Install (or clear) a Byzantine-peer model; not owned, stateful like a
  // fault plan. Frames sent by the party the adversary controls are
  // substituted with crafted ones before framing and metering.
  void set_adversary(Adversary* adversary) { adversary_ = adversary; }
  Adversary* adversary() const { return adversary_; }

  // Install (or clear) a chaos plan (sim/chaos.h); not owned, stateful and
  // shared across channels like a fault plan. (a, b) are this channel's
  // endpoints in the plan's topology. Every send first asks the plan
  // whether the link is usable — a crashed endpoint or partitioned link
  // throws PlayerCrashError / LinkPartitionedError BEFORE any bits are
  // metered (the frame never left the sender) — and link-level corruption
  // from the plan merges with the iid fault plan under the same integrity
  // framing.
  void set_chaos(ChaosPlan* plan, std::size_t a = 0, std::size_t b = 1) {
    chaos_ = plan;
    chaos_a_ = a;
    chaos_b_ = b;
  }
  ChaosPlan* chaos() const { return chaos_; }

  // Install (or clear) resource limits; not owned, must outlive the run.
  // Disabled or absent limits are free (one branch per send).
  void set_limits(const core::ResourceLimits* limits) { limits_ = limits; }
  const core::ResourceLimits* limits() const { return limits_; }

  // Decoder for a delivered buffer with this channel's limits wired in —
  // the one constructor protocol decode sites should use, so a lying
  // length prefix is charged against max_decoded_items.
  util::BitReader reader(const util::BitBuffer& buffer) const {
    return util::BitReader(buffer, limits_);
  }

  // Charge latency that produced no payload (retry backoff, injected
  // delay): adds rounds to the cost and attributes them to the current
  // tracer phase.
  void charge_extra_rounds(std::uint64_t rounds);

  // Per-session scratch-buffer pool. Protocol hot loops acquire encode
  // scratch here so repeated messages reuse word storage instead of
  // re-allocating (util::BufferPool). Single-threaded like the channel
  // itself: one pool per session, never shared across threads — the
  // thread-affinity contract in docs/OBSERVABILITY.md.
  util::BufferPool& buffer_pool() { return buffer_pool_; }

  // Per-session word-array scratch (hashed images, CSR bucket tables,
  // counting-sort cursors). Same single-thread, one-session affinity as
  // buffer_pool(); protocol entry points open a util::ScratchArena::Frame
  // and everything allocated inside rewinds when the stage returns.
  util::ScratchArena& scratch() { return scratch_; }

 private:
  CostStats cost_;
  bool digest_enabled_ = false;
  std::uint64_t digest_ = kTranscriptDigestSeed;
  bool has_last_direction_ = false;
  PartyId last_direction_ = PartyId::kAlice;
  std::unique_ptr<Transcript> transcript_;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  FaultPlan* fault_plan_ = nullptr;
  Adversary* adversary_ = nullptr;
  ChaosPlan* chaos_ = nullptr;
  std::size_t chaos_a_ = 0;
  std::size_t chaos_b_ = 1;
  const core::ResourceLimits* limits_ = nullptr;
  util::BufferPool buffer_pool_;
  util::ScratchArena scratch_;
};

}  // namespace setint::sim
