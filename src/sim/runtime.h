// Strictly-separated protocol execution.
//
// Most protocols in this library are written driver-style: one function
// sees both parties' state, with the Channel enforcing that data only
// flows through metered messages. This runtime provides the stronger
// execution mode for the building blocks: each party is an object holding
// ONLY its own input and randomness view, reacting to delivered messages.
// A protocol implemented this way provably uses no out-of-band knowledge.
//
// The concrete parties in sim/parties.h mirror the driver implementations
// bit-for-bit (same substream labels, same encodings), so the equivalence
// tests in tests/runtime_test.cc can compare whole transcripts digests —
// the strongest evidence the driver versions don't cheat.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/channel.h"
#include "util/bitio.h"

namespace setint::sim {

// One endpoint of a two-party protocol. The scheduler calls start() once
// on the opening party, then alternates on_message() with each delivered
// payload; a party returning std::nullopt yields the floor without
// speaking (the protocol ends when both parties are done()).
class Party {
 public:
  virtual ~Party() = default;

  // First message, for the party that opens the protocol.
  virtual std::optional<util::BitBuffer> start() { return std::nullopt; }

  // React to a delivered message; optionally reply.
  virtual std::optional<util::BitBuffer> on_message(
      const util::BitBuffer& message) = 0;

  virtual bool done() const = 0;
};

// Runs alice (the opener) against bob through `channel` until both report
// done. Throws std::runtime_error if the conversation stalls (neither
// party speaks while one is unfinished) or exceeds max_messages.
void run_two_party(Channel& channel, Party& alice, Party& bob,
                   std::size_t max_messages = 1u << 20);

}  // namespace setint::sim
