// Topology-level chaos: crash/restart schedules, link partition windows,
// and a Gilbert–Elliott bursty-loss model layered on top of the iid
// FaultPlan knobs.
//
// FaultPlan damages individual frames; a ChaosPlan models the failures
// that live above single messages: a player process crashing and coming
// back `restart_ticks` later (or never), a link partitioned for a window
// of the session, and loss/corruption that arrives in bursts (two-state
// Markov channel) instead of iid. Time is a logical clock: one tick per
// attempted send, advanced by the plan itself, so every decision is a
// deterministic function of (protocol seed, chaos seed) exactly like the
// FaultPlan stream — the property bench/exp_chaos's determinism contract
// and tools/replay both rely on.
//
// The recovery story (docs/ROBUSTNESS.md § crash faults): the channel
// asks the plan `on_send_attempt(a, b)` before metering; a crashed
// endpoint or partitioned link throws PlayerCrashError /
// LinkPartitionedError BEFORE any bits are charged. The session layer in
// multiparty/coordinator.h catches, waits out the outage as charged
// latency rounds, and resumes the protocol from its last core::Checkpoint
// instead of re-running the attempt — metering the replayed bits
// separately. A player that never returns (max_crashes exceeded, or a
// crash_prob=1 / max_crashes=0 schedule) degrades the session honestly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault.h"
#include "util/bitio.h"
#include "util/rng.h"

namespace setint::sim {

// Thrown by ChaosPlan::on_send_attempt when either endpoint of the link is
// down. `revive_tick` is the logical tick at which the player is up again;
// meaningless when `permanent` (the player never returns).
class PlayerCrashError : public std::runtime_error {
 public:
  PlayerCrashError(std::size_t player, std::uint64_t revive_tick,
                   bool permanent);

  std::size_t player;
  std::uint64_t revive_tick;
  bool permanent;
};

// Thrown by ChaosPlan::on_send_attempt while a partition window covers the
// link. `heal_tick` is the first tick at which every covering window has
// ended.
class LinkPartitionedError : public std::runtime_error {
 public:
  LinkPartitionedError(std::size_t a, std::size_t b, std::uint64_t heal_tick);

  std::size_t a;
  std::size_t b;
  std::uint64_t heal_tick;
};

// Two-state Markov loss/corruption channel (Gilbert–Elliott). The link
// starts in the good state; before each frame it transitions
// good->bad with p_good_to_bad and bad->good with p_bad_to_good, then the
// frame is dropped with loss_{state} or has each bit flipped with
// flip_{state}. Matching the stationary average of an iid FaultSpec while
// concentrating the damage into bursts is the point — bursts are what
// break naive retry loops.
struct GilbertElliott {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 0.0;
  double flip_good = 0.0;
  double flip_bad = 0.0;

  bool enabled() const {
    return (p_good_to_bad > 0.0 &&
            (loss_bad > 0.0 || flip_bad > 0.0)) ||
           loss_good > 0.0 || flip_good > 0.0;
  }
};

// A player never returns once it has crashed more than `max_crashes`
// times. {crash_prob = 1.0, max_crashes = 0} models a player that dies on
// first contact and never comes back.
inline constexpr std::uint64_t kUnlimitedCrashes = ~std::uint64_t{0};

// Per-player crash schedule: before each attempted send touching the
// player, it crashes with `crash_prob` and stays down for `restart_ticks`
// logical ticks.
struct CrashSchedule {
  double crash_prob = 0.0;
  std::uint64_t restart_ticks = 4;
  std::uint64_t max_crashes = kUnlimitedCrashes;
};

// Matches every link when used as PartitionWindow::a.
inline constexpr std::size_t kAllLinks = static_cast<std::size_t>(-1);

// The link {a, b} (unordered; a == kAllLinks matches every link) is
// unusable for ticks in the half-open window [start_tick, end_tick).
struct PartitionWindow {
  std::size_t a = 0;
  std::size_t b = 1;
  std::uint64_t start_tick = 0;
  std::uint64_t end_tick = 0;
};

// Declarative chaos configuration. `crash` applies to every player unless
// overridden per player in `crash_overrides`. All probabilities are
// validated at ChaosPlan construction (std::invalid_argument outside
// [0, 1]).
struct ChaosSpec {
  std::size_t players = 2;
  std::uint64_t seed = 0xC405;
  CrashSchedule crash;
  std::vector<std::pair<std::size_t, CrashSchedule>> crash_overrides;
  GilbertElliott burst;
  std::vector<PartitionWindow> partitions;

  bool enabled() const;
};

// Running totals over the whole plan (all players, all links).
struct ChaosStats {
  std::uint64_t ticks = 0;              // attempted sends seen
  std::uint64_t crashes = 0;            // transient crash events
  std::uint64_t permanent_losses = 0;   // players that will never return
  std::uint64_t blocked_sends = 0;      // attempts refused (down/partition)
  std::uint64_t partition_blocks = 0;   // attempts refused by a window
  std::uint64_t burst_state_entries = 0;  // good->bad transitions
  std::uint64_t burst_drops = 0;
  std::uint64_t burst_flipped_bits = 0;
  std::uint64_t link_fault_events = 0;  // per-link FaultPlan events
  std::uint64_t content_events = 0;     // drops/flips/truncations (any source)
};

class ChaosPlan {
 public:
  explicit ChaosPlan(const ChaosSpec& spec) : ChaosPlan(spec, 0) {}

  // Mixing in the protocol seed keeps independent sessions' chaos streams
  // independent while staying reproducible from the two seeds alone.
  ChaosPlan(const ChaosSpec& spec, std::uint64_t protocol_seed);

  // Installs an asymmetric per-link fault model (validated like any
  // FaultSpec; the spec's own seed is folded with a link-derived seed so
  // two links with the same spec draw independent streams).
  void set_link_faults(std::size_t a, std::size_t b, const FaultSpec& spec);

  const ChaosSpec& spec() const { return spec_; }
  // The protocol seed this plan was constructed with — recorded in replay
  // contexts so tools/replay can rebuild an identical plan.
  std::uint64_t protocol_seed() const { return protocol_seed_; }
  const ChaosStats& stats() const { return stats_; }
  bool enabled() const;

  // True when this plan can damage frame contents on some link, i.e. the
  // channel must add integrity framing even without a global FaultPlan.
  bool corrupts_links() const;

  std::uint64_t now() const { return now_; }
  // Jumps the logical clock forward (never backward); the recovery layer
  // calls this after charging the wait as latency rounds.
  void advance_to(std::uint64_t tick);

  // One logical tick per attempted send on link (a, b). Evaluates both
  // endpoints' crash schedules and the partition calendar; throws
  // PlayerCrashError / LinkPartitionedError when the send cannot happen.
  // Nothing is thrown for a healthy link and the frame proceeds to
  // corrupt().
  void on_send_attempt(std::size_t a, std::size_t b);

  // Applies link-level damage (Gilbert–Elliott step + per-link faults) to
  // a frame in flight on (a, b). Returns the merged fault summary so the
  // channel can meter duplicates/delays and run the integrity check.
  AppliedFaults corrupt(std::size_t a, std::size_t b,
                        util::BitBuffer& payload);

  bool player_dead(std::size_t p) const;
  bool player_up(std::size_t p) const;

 private:
  struct PlayerState {
    CrashSchedule sched;
    util::Rng rng;
    std::uint64_t down_until = 0;  // player is down for ticks < down_until
    std::uint64_t crashes = 0;
    bool dead = false;

    PlayerState(const CrashSchedule& s, std::uint64_t seed)
        : sched(s), rng(seed) {}
  };
  struct LinkState {
    util::Rng rng;
    bool bad = false;  // Gilbert–Elliott state
    std::unique_ptr<FaultPlan> faults;

    explicit LinkState(std::uint64_t seed) : rng(seed) {}
  };

  PlayerState& player_state(std::size_t p);
  LinkState& link_state(std::size_t a, std::size_t b);
  void check_crash(std::size_t p);

  ChaosSpec spec_;
  std::uint64_t protocol_seed_ = 0;
  std::uint64_t plan_seed_;
  std::uint64_t now_ = 0;
  std::vector<PlayerState> players_;
  std::map<std::pair<std::size_t, std::size_t>, LinkState> links_;
  ChaosStats stats_;
};

}  // namespace setint::sim
