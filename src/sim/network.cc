#include "sim/network.h"

#include <algorithm>

#include "obs/tracer.h"

namespace setint::sim {

void Network::check_ids(std::size_t a, std::size_t b) const {
  if (a >= players_ || b >= players_ || a == b) {
    throw std::invalid_argument("Network: bad player ids");
  }
}

void Network::bill_pairwise(std::size_t a, std::size_t b,
                            const CostStats& cost) {
  check_ids(a, b);
  costs_[a].bits_sent += cost.bits_from_alice;
  costs_[a].bits_received += cost.bits_from_bob;
  costs_[b].bits_sent += cost.bits_from_bob;
  costs_[b].bits_received += cost.bits_from_alice;
  total_bits_ += cost.bits_total;
  if (!in_batch_) {
    rounds_ += cost.rounds;
  } else {
    batch_max_rounds_ = std::max(batch_max_rounds_, cost.rounds);
  }
  if (tracer_ != nullptr) {
    tracer_->on_cost(cost);
    obs::count(tracer_, "net.pairwise_bills");
    obs::observe(tracer_, "net.pairwise_bits", cost.bits_total);
    obs::observe(tracer_, "net.pairwise_rounds", cost.rounds);
  }
}

void Network::begin_batch() {
  if (in_batch_) throw std::logic_error("Network: nested batch");
  in_batch_ = true;
  batch_max_rounds_ = 0;
}

void Network::bill_pairwise_in_batch(std::size_t a, std::size_t b,
                                     const CostStats& cost) {
  if (!in_batch_) throw std::logic_error("Network: not in batch");
  bill_pairwise(a, b, cost);
}

void Network::end_batch() {
  if (!in_batch_) throw std::logic_error("Network: not in batch");
  in_batch_ = false;
  rounds_ += batch_max_rounds_;
}

std::uint64_t Network::max_player_bits() const {
  std::uint64_t m = 0;
  for (const auto& c : costs_) m = std::max(m, c.bits_touched());
  return m;
}

double Network::average_player_bits() const {
  return static_cast<double>(total_bits_) * 2.0 /
         static_cast<double>(players_);
}

}  // namespace setint::sim
