// Deterministic fault injection for the simulated transport.
//
// A FaultPlan is a seeded adversarial model of an unreliable link: the
// Channel hands it every in-flight frame and the plan may flip bits,
// truncate the frame, drop it, duplicate it (charged as a second
// transmission), or delay it (charged as extra latency rounds). All
// decisions come from the plan's own Rng, so a run is reproducible from
// (protocol seed, fault seed) alone — the property the BENCH_faults
// determinism contract pins.
//
// The protocols' correctness story under faults (docs/ROBUSTNESS.md):
// damaged frames fail the channel's 32-bit integrity check and send()
// throws ChannelIntegrityError (the decoder-level bounds checks back this
// up for the residual checksum-collision window); the retry layer in
// multiparty/coordinator.h catches, re-runs with fresh randomness, and
// after budget exhaustion degrades to an honestly-flagged superset.
#pragma once

#include <cstdint>

#include "util/bitio.h"
#include "util/rng.h"

namespace setint::sim {

// Per-message fault probabilities, all in [0, 1]. Default: no faults.
struct FaultSpec {
  double flip_per_bit = 0.0;    // each delivered bit flips independently
  double truncate_prob = 0.0;   // message cut at a uniform bit position
  double drop_prob = 0.0;       // message delivered as an empty buffer
  double duplicate_prob = 0.0;  // message transmitted (and billed) twice
  double delay_prob = 0.0;      // message charged `delay_rounds` extra rounds
  std::uint64_t delay_rounds = 1;
  std::uint64_t seed = 0x0fa1;  // seeds the plan's private Rng

  bool enabled() const {
    return flip_per_bit > 0.0 || truncate_prob > 0.0 || drop_prob > 0.0 ||
           duplicate_prob > 0.0 || delay_prob > 0.0;
  }
};

// Running totals over every message the plan has touched.
struct FaultStats {
  std::uint64_t messages_seen = 0;
  std::uint64_t faults_injected = 0;  // fault events (a flipped message is 1)
  std::uint64_t bits_flipped = 0;
  std::uint64_t flipped_messages = 0;
  std::uint64_t truncated_messages = 0;
  std::uint64_t truncated_bits = 0;
  std::uint64_t dropped_messages = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t delayed_messages = 0;
  std::uint64_t delay_rounds_charged = 0;
};

// What happened to one message; returned so the Channel can meter the
// extra cost (duplicate bits, delay rounds) and attribute it to the
// current tracer phase.
struct AppliedFaults {
  std::uint64_t bits_flipped = 0;
  std::uint64_t truncated_bits = 0;  // bits removed from the tail
  bool dropped = false;
  bool duplicated = false;
  std::uint64_t delay_rounds = 0;

  std::uint64_t events() const {
    return (bits_flipped > 0 ? 1u : 0u) + (truncated_bits > 0 ? 1u : 0u) +
           (dropped ? 1u : 0u) + (duplicated ? 1u : 0u) +
           (delay_rounds > 0 ? 1u : 0u);
  }
};

class FaultPlan {
 public:
  FaultPlan() : FaultPlan(FaultSpec{}) {}
  explicit FaultPlan(const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& stats() const { return stats_; }
  bool enabled() const { return spec_.enabled(); }

  // Mutates `payload` into what the receiver observes and returns what was
  // injected. Drop wins over truncation; flips apply to the surviving
  // prefix. Called once per Channel::send in delivery order, which keeps
  // the fault stream deterministic.
  AppliedFaults apply(util::BitBuffer& payload);

 private:
  FaultSpec spec_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace setint::sim
