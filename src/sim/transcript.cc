#include "sim/transcript.h"

#include "util/rng.h"

namespace setint::sim {

CostStats& CostStats::operator+=(const CostStats& o) {
  bits_total += o.bits_total;
  bits_from_alice += o.bits_from_alice;
  bits_from_bob += o.bits_from_bob;
  messages += o.messages;
  rounds += o.rounds;
  return *this;
}

void Transcript::record(PartyId from, const util::BitBuffer& payload,
                        std::string label) {
  entries_.push_back(TranscriptEntry{from, payload, std::move(label)});
}

std::uint64_t Transcript::digest() const {
  std::uint64_t h = 0x5ee7ab1eu;
  for (const auto& e : entries_) {
    h = util::mix64(h, static_cast<std::uint64_t>(index(e.from)));
    h = util::mix64(h, e.payload.fingerprint());
  }
  return h;
}

}  // namespace setint::sim
