#include "sim/transcript.h"

#include <ostream>

#include "util/rng.h"

namespace setint::sim {

CostStats& CostStats::operator+=(const CostStats& o) {
  bits_total += o.bits_total;
  bits_from_alice += o.bits_from_alice;
  bits_from_bob += o.bits_from_bob;
  messages += o.messages;
  rounds += o.rounds;
  return *this;
}

std::string CostStats::ToString() const {
  return "CostStats{bits=" + std::to_string(bits_total) + " (alice " +
         std::to_string(bits_from_alice) + ", bob " +
         std::to_string(bits_from_bob) +
         "), messages=" + std::to_string(messages) +
         ", rounds=" + std::to_string(rounds) + "}";
}

std::ostream& operator<<(std::ostream& os, const CostStats& c) {
  return os << c.ToString();
}

void Transcript::record(PartyId from, const util::BitBuffer& payload,
                        std::string label) {
  entries_.push_back(TranscriptEntry{from, payload, std::move(label)});
}

std::string Transcript::ToString() const {
  std::uint64_t bits = 0;
  for (const auto& e : entries_) bits += e.payload.size_bits();
  std::string out = "Transcript{" + std::to_string(entries_.size()) +
                    " messages, " + std::to_string(bits) + " bits}";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    out += "\n  #" + std::to_string(i) + " " +
           (e.from == PartyId::kAlice ? "alice" : "bob  ") + " " +
           std::to_string(e.payload.size_bits()) + " bits";
    if (!e.label.empty()) out += "  '" + e.label + "'";
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Transcript& t) {
  return os << t.ToString();
}

std::uint64_t fold_digest(std::uint64_t h, PartyId from,
                          std::uint64_t payload_fingerprint) {
  h = util::mix64(h, static_cast<std::uint64_t>(index(from)));
  return util::mix64(h, payload_fingerprint);
}

std::uint64_t Transcript::digest() const {
  std::uint64_t h = kTranscriptDigestSeed;
  for (const auto& e : entries_) {
    h = fold_digest(h, e.from, e.payload.fingerprint());
  }
  return h;
}

}  // namespace setint::sim
