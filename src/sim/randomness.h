// Shared vs. private randomness sources.
//
// SharedRandomness models the common random string: both parties derive
// identical hash functions from it at zero communication cost. In the
// private-coin model (core/private_coin.h) one party samples seeds locally
// and ships them explicitly, paying the bits the paper's Section 3.1
// accounts for.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.h"

namespace setint::sim {

class SharedRandomness {
 public:
  explicit SharedRandomness(std::uint64_t seed) : master_(seed) {}

  // Named substream: a fresh generator fully determined by (seed, label,
  // a, b). Both parties calling with identical arguments get identical
  // streams — the common-random-string access pattern.
  util::Rng stream(std::string_view label, std::uint64_t a = 0,
                   std::uint64_t b = 0) const {
    return master_.substream(label, a, b);
  }

  std::uint64_t seed() const { return master_.seed(); }

 private:
  util::Rng master_;
};

}  // namespace setint::sim
