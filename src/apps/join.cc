#include "apps/join.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::apps {

namespace {

void append_payload(util::BitBuffer& out, const std::string& payload) {
  out.append_gamma64(payload.size());
  for (char c : payload) {
    out.append_bits(static_cast<unsigned char>(c), 8);
  }
}

std::string read_payload(util::BitReader& in) {
  const std::uint64_t len = in.read_gamma64();
  in.expect_at_least(len, 8, "payload length");
  std::string s;
  s.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(in.read_bits(8)));
  }
  return s;
}

util::Set keys_of(const std::vector<Row>& table) {
  util::Set keys;
  keys.reserve(table.size());
  for (const Row& r : table) keys.push_back(r.key);
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    throw std::invalid_argument("distributed_join: duplicate keys");
  }
  return keys;
}

}  // namespace

JoinResult distributed_join(sim::Channel& channel,
                            const sim::SharedRandomness& shared,
                            std::uint64_t nonce, std::uint64_t universe,
                            std::vector<Row> left, std::vector<Row> right,
                            const core::VerificationTreeParams& params) {
  const util::Set left_keys = keys_of(left);
  const util::Set right_keys = keys_of(right);

  JoinResult result;

  // Naive-plan yardstick: ship the whole left table (Rice-coded keys —
  // the strongest version of the naive plan).
  {
    util::BitBuffer naive;
    util::append_set_rice(naive, left_keys, universe);
    for (const Row& r : left) append_payload(naive, r.payload);
    result.naive_bits = naive.size_bits();
  }

  const std::uint64_t before = channel.cost().bits_total;
  const core::IntersectionOutput out = core::verification_tree_intersection(
      channel, shared, util::mix64(nonce, 0x10), universe, left_keys,
      right_keys, params);
  result.key_protocol_bits = channel.cost().bits_total - before;

  std::unordered_map<std::uint64_t, const Row*> left_by_key;
  for (const Row& r : left) left_by_key.emplace(r.key, &r);
  std::unordered_map<std::uint64_t, const Row*> right_by_key;
  for (const Row& r : right) right_by_key.emplace(r.key, &r);

  // Payload exchange for candidate keys only. Each side sends (key set,
  // payloads); the joined rows are the keys BOTH sides claimed — if the
  // protocol's candidates disagree (tiny probability), extras simply fail
  // to pair and are dropped, never fabricated.
  const std::uint64_t pay_before = channel.cost().bits_total;
  util::BitBuffer a_msg;
  util::append_set(a_msg, out.alice);
  for (std::uint64_t key : out.alice) {
    append_payload(a_msg, left_by_key.at(key)->payload);
  }
  const util::BitBuffer a_delivered =
      channel.send(sim::PartyId::kAlice, std::move(a_msg), "join-payload-a");

  util::BitBuffer b_msg;
  util::append_set(b_msg, out.bob);
  for (std::uint64_t key : out.bob) {
    append_payload(b_msg, right_by_key.at(key)->payload);
  }
  const util::BitBuffer b_delivered =
      channel.send(sim::PartyId::kBob, std::move(b_msg), "join-payload-b");
  result.payload_bits = channel.cost().bits_total - pay_before;

  util::BitReader ra(a_delivered);
  const util::Set a_keys = util::read_set(ra);
  std::unordered_map<std::uint64_t, std::string> a_payloads;
  for (std::uint64_t key : a_keys) a_payloads.emplace(key, read_payload(ra));

  util::BitReader rb(b_delivered);
  const util::Set b_keys = util::read_set(rb);
  std::unordered_map<std::uint64_t, std::string> b_payloads;
  for (std::uint64_t key : b_keys) b_payloads.emplace(key, read_payload(rb));

  const util::Set joined = util::set_intersection(a_keys, b_keys);
  result.rows.reserve(joined.size());
  for (std::uint64_t key : joined) {
    result.rows.push_back(
        JoinedRow{key, a_payloads.at(key), b_payloads.at(key)});
  }
  return result;
}

}  // namespace setint::apps
