#include "apps/similarity.h"

#include "util/bitio.h"
#include "util/rng.h"

namespace setint::apps {

SimilarityReport similarity_report(sim::Channel& channel,
                                   const sim::SharedRandomness& shared,
                                   std::uint64_t nonce, std::uint64_t universe,
                                   util::SetView s, util::SetView t,
                                   const core::VerificationTreeParams&
                                       params) {
  // Sizes are two gamma-coded messages (the paper: "communicating |S| and
  // |T| can be done in one round" each).
  util::BitBuffer a_msg;
  a_msg.append_gamma64(s.size());
  const util::BitBuffer a_sz =
      channel.send(sim::PartyId::kAlice, std::move(a_msg), "size-s");
  util::BitBuffer b_msg;
  b_msg.append_gamma64(t.size());
  const util::BitBuffer b_sz =
      channel.send(sim::PartyId::kBob, std::move(b_msg), "size-t");
  util::BitReader ra(a_sz);
  util::BitReader rb(b_sz);
  const std::uint64_t ns = ra.read_gamma64();
  const std::uint64_t nt = rb.read_gamma64();

  const core::IntersectionOutput out = core::verification_tree_intersection(
      channel, shared, util::mix64(nonce, 0x5171), universe, s, t, params);

  SimilarityReport report;
  report.size_s = ns;
  report.size_t_side = nt;
  report.intersection = out.alice;
  report.intersection_size = out.alice.size();
  report.union_size = ns + nt - report.intersection_size;
  report.symmetric_difference = report.union_size - report.intersection_size;
  if (report.union_size > 0) {
    const auto u = static_cast<double>(report.union_size);
    report.jaccard = static_cast<double>(report.intersection_size) / u;
    report.rarity1 = static_cast<double>(report.symmetric_difference) / u;
    report.rarity2 = static_cast<double>(report.intersection_size) / u;
  }
  return report;
}

}  // namespace setint::apps
