// Applications of the intersection protocol (paper Section 1,
// "Applications"): once |S cap T| is known exactly and |S|, |T| cost two
// gamma-coded messages, every one of these statistics is exact at the same
// O(k log^(r) k) / O(r) round budget — the first protocols with that
// tradeoff for exact Jaccard, Hamming distance, distinct elements, and
// 1-/2-rarity [DM02].
#pragma once

#include <cstdint>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::apps {

struct SimilarityReport {
  std::uint64_t size_s = 0;
  std::uint64_t size_t_side = 0;
  std::uint64_t intersection_size = 0;
  std::uint64_t union_size = 0;            // exact # distinct elements
  std::uint64_t symmetric_difference = 0;  // == sparse Hamming distance
  double jaccard = 0.0;                    // |S cap T| / |S cup T|
  double rarity1 = 0.0;  // fraction of union elements seen exactly once
  double rarity2 = 0.0;  // fraction of union elements seen exactly twice
  util::Set intersection;                  // the witness itself
};

SimilarityReport similarity_report(sim::Channel& channel,
                                   const sim::SharedRandomness& shared,
                                   std::uint64_t nonce, std::uint64_t universe,
                                   util::SetView s, util::SetView t,
                                   const core::VerificationTreeParams&
                                       params = {});

}  // namespace setint::apps
