// Distributed relational join — the paper's motivating database workload
// ("computing the join of two databases held by different servers requires
// computing an intersection").
//
// Two servers hold key-unique tables. They run the intersection protocol
// on their key sets, then ship payloads ONLY for matched keys. Against
// the naive plan (ship a whole table), communication drops from
// O(k * (log n + payload)) to O(k log^(r) k + |join| * payload).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"

namespace setint::apps {

struct Row {
  std::uint64_t key = 0;
  std::string payload;
};

struct JoinedRow {
  std::uint64_t key = 0;
  std::string left_payload;
  std::string right_payload;
};

struct JoinResult {
  std::vector<JoinedRow> rows;        // keyed ascending; both parties learn it
  std::uint64_t key_protocol_bits = 0;
  std::uint64_t payload_bits = 0;
  std::uint64_t naive_bits = 0;       // cost of shipping the left table whole
};

// Keys must be unique per table; rows may arrive in any order.
JoinResult distributed_join(sim::Channel& channel,
                            const sim::SharedRandomness& shared,
                            std::uint64_t nonce, std::uint64_t universe,
                            std::vector<Row> left, std::vector<Row> right,
                            const core::VerificationTreeParams& params = {});

}  // namespace setint::apps
