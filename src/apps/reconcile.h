// Incremental intersection maintenance.
//
// Two servers that already agree on I = S cap T and then each apply a
// small batch of inserts/deletes should not pay O(k) again: the new
// intersection is
//     I' = (I minus removals on either side)
//          cup (Alice's inserts cap T')  cup  (Bob's inserts cap S'),
// so only the DELTAS need protocol work. This module reconciles at
// O((|add| + |rem|) log k) bits + a constant-size verification
// certificate, falling back to the full verification-tree protocol only
// if the certificate fails — the database "continuous join maintenance"
// companion to the one-shot protocols.
#pragma once

#include <cstdint>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::apps {

struct Delta {
  util::Set added;    // canonical, disjoint from the pre-update set
  util::Set removed;  // canonical, subset of the pre-update set
};

struct ReconcileResult {
  util::Set intersection;     // the agreed new intersection
  bool used_fallback = false; // certificate failed -> full protocol re-ran
};

// s_new / t_new are the post-update sets; old_intersection MUST be the
// exact previous intersection (e.g. the certified output of a prior run):
// the incremental identity relies on it, and a symmetric corruption of it
// is invisible to the certificate. Hash collisions during the delta
// exchange, by contrast, always desynchronize the two views and are
// caught and repaired via the fallback.
ReconcileResult reconcile_intersection(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, std::uint64_t universe, util::SetView s_new,
    util::SetView t_new, util::SetView old_intersection,
    const Delta& alice_delta, const Delta& bob_delta,
    const core::VerificationTreeParams& fallback_params = {});

}  // namespace setint::apps
