// Multi-party application layer: the m-server versions of the database
// workloads from the paper's applications discussion.
//
//  * m-way distributed join: rows keyed by [universe) on every server;
//    the join (rows present on ALL servers) is the m-way key intersection
//    plus a payload gather.
//  * replica audit: which records are common to every replica, and what
//    each replica is missing relative to that core (the m-server
//    generalization of symmetric difference).
//  * pairwise similarity matrix: exact Jaccard between every pair of
//    servers, each entry from one verified two-party run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/join.h"
#include "multiparty/coordinator.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/set_util.h"

namespace setint::apps {

struct MultipartyJoinResult {
  // Keys on every server, with the payloads gathered from each.
  struct JoinedRow {
    std::uint64_t key = 0;
    std::vector<std::string> payloads;  // one per server, in server order
  };
  std::vector<JoinedRow> rows;
  std::uint64_t key_bits = 0;      // m-way intersection protocol cost
  std::uint64_t payload_bits = 0;  // gather cost
};

// Tables must have unique keys per server. The gather ships matched
// payloads from every server to the coordinator (server 0).
MultipartyJoinResult multiparty_join(
    sim::Network& network, const sim::SharedRandomness& shared,
    std::uint64_t universe, const std::vector<std::vector<Row>>& tables,
    const multiparty::MultipartyParams& params = {});

struct ReplicaAuditReport {
  util::Set fully_replicated;            // on every server
  std::vector<std::size_t> extra_count;  // per server: records outside core
  double replication_factor = 0.0;       // |core| / max replica size
  std::uint64_t protocol_bits = 0;
};

// Audits m replicas: the fully-replicated core via the coordinator
// protocol (with result broadcast so every replica can diff locally),
// plus per-replica divergence statistics.
ReplicaAuditReport replica_audit(sim::Network& network,
                                 const sim::SharedRandomness& shared,
                                 std::uint64_t universe,
                                 const std::vector<util::Set>& replicas,
                                 const multiparty::MultipartyParams& params =
                                     {});

// Exact pairwise Jaccard matrix (m x m, symmetric, unit diagonal); entry
// (i, j) costs one verified two-party intersection billed to the network.
std::vector<std::vector<double>> similarity_matrix(
    sim::Network& network, const sim::SharedRandomness& shared,
    std::uint64_t universe, const std::vector<util::Set>& sets,
    const core::VerificationTreeParams& tree = {});

}  // namespace setint::apps
