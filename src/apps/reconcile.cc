#include "apps/reconcile.h"

#include <algorithm>

#include "eq/equality.h"
#include "hashing/pairwise.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace setint::apps {

namespace {

// Positions (indices into `reference`) of the elements also in `subset`,
// gamma-delta coded — O(|subset| log |reference|) bits.
util::BitBuffer encode_positions(util::SetView reference,
                                 util::SetView subset) {
  util::Set positions;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (util::set_contains(subset, reference[i])) positions.push_back(i);
  }
  util::BitBuffer out;
  util::append_set(out, positions);
  return out;
}

util::Set decode_positions(util::BitReader& reader, util::SetView reference) {
  const util::Set positions = util::read_set(reader);
  util::Set out;
  out.reserve(positions.size());
  for (std::uint64_t p : positions) {
    if (p >= reference.size()) {
      throw std::invalid_argument(
          "decode: reconcile position " + std::to_string(p) +
          " out of range (field 'position')");
    }
    out.push_back(reference[p]);
  }
  return out;
}

util::Set image_of(util::SetView elements, const hashing::PairwiseHash& h) {
  util::Set image;
  image.reserve(elements.size());
  for (std::uint64_t x : elements) image.push_back(h(x));
  std::sort(image.begin(), image.end());
  image.erase(std::unique(image.begin(), image.end()), image.end());
  return image;
}

util::BitBuffer encode_image(const util::Set& image, unsigned width) {
  util::BitBuffer out;
  out.append_gamma64(image.size());
  for (std::uint64_t v : image) out.append_bits(v, width);
  return out;
}

util::Set decode_image(util::BitReader& reader, unsigned width) {
  const std::uint64_t count = reader.read_gamma64();
  reader.expect_at_least(count, width, "image count");
  util::Set image(count);
  for (auto& v : image) v = reader.read_bits(width);
  return image;
}

// Bitmask over `image` entries: which hash values occur in `own` under h.
util::BitBuffer match_bitmask(util::SetView own,
                              const hashing::PairwiseHash& h,
                              const util::Set& image) {
  util::Set own_image = image_of(own, h);
  util::BitBuffer mask;
  for (std::uint64_t v : image) {
    mask.append_bit(util::set_contains(own_image, v));
  }
  return mask;
}

// Entries of `image` whose bitmask bit is set.
util::Set matched_entries(const util::BitBuffer& mask,
                          const util::Set& image) {
  util::Set out;
  util::BitReader reader(mask);
  for (std::uint64_t v : image) {
    if (reader.read_bit()) out.push_back(v);
  }
  return out;
}

util::Set members_matching_image(util::SetView own,
                                 const hashing::PairwiseHash& h,
                                 util::SetView image) {
  util::Set out;
  for (std::uint64_t x : own) {
    if (util::set_contains(image, h(x))) out.push_back(x);
  }
  return out;
}

util::Set assemble(const util::Set& surviving, const util::Set& part_a,
                   const util::Set& part_b) {
  util::Set view = surviving;
  view.insert(view.end(), part_a.begin(), part_a.end());
  view.insert(view.end(), part_b.begin(), part_b.end());
  std::sort(view.begin(), view.end());
  view.erase(std::unique(view.begin(), view.end()), view.end());
  return view;
}

}  // namespace

ReconcileResult reconcile_intersection(
    sim::Channel& channel, const sim::SharedRandomness& shared,
    std::uint64_t nonce, std::uint64_t universe, util::SetView s_new,
    util::SetView t_new, util::SetView old_intersection,
    const Delta& alice_delta, const Delta& bob_delta,
    const core::VerificationTreeParams& fallback_params) {
  util::validate_set(s_new, universe);
  util::validate_set(t_new, universe);
  util::validate_set(old_intersection, universe);

  // Step 1 (2 rounds): each side reports which old-intersection elements
  // it removed, as positions into the shared old_intersection.
  const util::BitBuffer a_removed_msg = channel.send(
      sim::PartyId::kAlice,
      encode_positions(old_intersection, alice_delta.removed), "rec-rem-a");
  const util::BitBuffer b_removed_msg = channel.send(
      sim::PartyId::kBob,
      encode_positions(old_intersection, bob_delta.removed), "rec-rem-b");
  util::BitReader a_removed_reader = channel.reader(a_removed_msg);
  const util::Set removed_a =
      decode_positions(a_removed_reader, old_intersection);
  util::BitReader b_removed_reader = channel.reader(b_removed_msg);
  const util::Set removed_b =
      decode_positions(b_removed_reader, old_intersection);
  const util::Set surviving = util::set_difference(
      util::set_difference(old_intersection, removed_a), removed_b);

  // Shared hash for the insert exchange, range sized so collisions across
  // all (insert, peer-element) pairs are ~2^-12.
  const std::uint64_t k =
      std::max<std::uint64_t>({s_new.size(), t_new.size(), 2});
  const std::uint64_t add_total =
      alice_delta.added.size() + bob_delta.added.size() + 2;
  const double range_d =
      std::min(0x1p62, static_cast<double>(add_total) *
                           static_cast<double>(k) * 4096.0);
  const std::uint64_t range =
      std::max<std::uint64_t>(1u << 16, static_cast<std::uint64_t>(range_d));
  util::Rng stream = shared.stream("reconcile", nonce);
  const auto h = hashing::PairwiseHash::sample(stream, universe, range);
  const unsigned width = util::ceil_log2(range);

  // Step 2 (3 rounds): insert images + match bitmasks.
  //   A -> B : image of Alice's inserts
  //   B -> A : image of Bob's inserts, plus the bitmask saying which of
  //            Alice's insert-hashes occur in T'
  //   A -> B : the bitmask for Bob's insert-hashes against S'
  const util::Set a_image = image_of(alice_delta.added, h);
  const util::BitBuffer a_img_delivered = channel.send(
      sim::PartyId::kAlice, encode_image(a_image, width), "rec-add-a");
  util::BitReader a_img_reader = channel.reader(a_img_delivered);
  const util::Set a_image_at_bob = decode_image(a_img_reader, width);

  const util::Set b_image = image_of(bob_delta.added, h);
  util::BitBuffer b_reply = encode_image(b_image, width);
  b_reply.append_buffer(match_bitmask(t_new, h, a_image_at_bob));
  const util::BitBuffer b_delivered =
      channel.send(sim::PartyId::kBob, std::move(b_reply), "rec-add-b");
  util::BitReader b_reader = channel.reader(b_delivered);
  const util::Set b_image_at_alice = decode_image(b_reader, width);
  util::BitBuffer a_match_mask;
  for (std::size_t i = 0; i < a_image.size(); ++i) {
    a_match_mask.append_bit(b_reader.read_bit());
  }

  const util::BitBuffer b_mask_delivered = channel.send(
      sim::PartyId::kAlice, match_bitmask(s_new, h, b_image_at_alice),
      "rec-mask-b");

  // Alice's view: survivors, her inserts whose hash Bob confirmed, and
  // her elements matching Bob's insert image.
  const util::Set a_confirmed = matched_entries(a_match_mask, a_image);
  const util::Set alice_view = assemble(
      surviving, members_matching_image(alice_delta.added, h, a_confirmed),
      members_matching_image(s_new, h, b_image_at_alice));

  // Bob's view, mirror-image.
  const util::Set b_confirmed = matched_entries(b_mask_delivered, b_image);
  const util::Set bob_view = assemble(
      surviving, members_matching_image(bob_delta.added, h, b_confirmed),
      members_matching_image(t_new, h, a_image_at_bob));

  // Step 3 (2 rounds): constant-size certificate. A hash collision puts
  // DIFFERENT elements into the two views, so equal views are correct up
  // to the 2^-64 certificate error.
  util::BitBuffer ca;
  util::append_set(ca, alice_view);
  util::BitBuffer cb;
  util::append_set(cb, bob_view);
  const bool certified =
      eq::equality_test(channel, shared, util::mix64(nonce, 0xCE7), ca, cb,
                        64);

  ReconcileResult result;
  if (certified) {
    result.intersection = alice_view;
    return result;
  }
  // Fallback: certificate failed (hash collision or stale
  // old_intersection) — run the full protocol for an exact repair.
  result.used_fallback = true;
  const core::IntersectionOutput full = core::verification_tree_intersection(
      channel, shared, util::mix64(nonce, 0xFA11), universe, s_new, t_new,
      fallback_params);
  result.intersection = full.alice;
  return result;
}

}  // namespace setint::apps
