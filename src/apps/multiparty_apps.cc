#include "apps/multiparty_apps.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/bitio.h"
#include "util/rng.h"

namespace setint::apps {

namespace {

void append_payload(util::BitBuffer& out, const std::string& payload) {
  out.append_gamma64(payload.size());
  for (char c : payload) out.append_bits(static_cast<unsigned char>(c), 8);
}

util::Set keys_of_table(const std::vector<Row>& table) {
  util::Set keys;
  keys.reserve(table.size());
  for (const Row& r : table) keys.push_back(r.key);
  std::sort(keys.begin(), keys.end());
  if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
    throw std::invalid_argument("multiparty_join: duplicate keys");
  }
  return keys;
}

}  // namespace

MultipartyJoinResult multiparty_join(
    sim::Network& network, const sim::SharedRandomness& shared,
    std::uint64_t universe, const std::vector<std::vector<Row>>& tables,
    const multiparty::MultipartyParams& params) {
  if (tables.size() != network.players()) {
    throw std::invalid_argument("multiparty_join: players/tables mismatch");
  }
  std::vector<util::Set> key_sets;
  key_sets.reserve(tables.size());
  for (const auto& table : tables) key_sets.push_back(keys_of_table(table));

  // Broadcast so every server knows the matched keys and can send its
  // payloads in the gather step.
  multiparty::MultipartyParams with_broadcast = params;
  with_broadcast.broadcast_result = true;
  const std::uint64_t before = network.total_bits();
  const multiparty::MultipartyResult keys = multiparty::coordinator_intersection(
      network, shared, universe, key_sets, with_broadcast);

  MultipartyJoinResult result;
  result.key_bits = network.total_bits() - before;

  // Gather: every server != 0 ships its payloads for the matched keys to
  // the coordinator, in key order (one parallel round).
  std::vector<std::unordered_map<std::uint64_t, const std::string*>> by_key(
      tables.size());
  for (std::size_t p = 0; p < tables.size(); ++p) {
    for (const Row& row : tables[p]) {
      by_key[p].emplace(row.key, &row.payload);
    }
  }
  if (network.players() > 1) {
    network.begin_batch();
    for (std::size_t p = 1; p < tables.size(); ++p) {
      util::BitBuffer gather;
      for (std::uint64_t key : keys.intersection) {
        append_payload(gather, *by_key[p].at(key));
      }
      sim::CostStats one_message;
      one_message.bits_total = gather.size_bits();
      one_message.bits_from_alice = gather.size_bits();
      one_message.messages = 1;
      one_message.rounds = 1;
      network.bill_pairwise_in_batch(p, 0, one_message);
      result.payload_bits += gather.size_bits();
    }
    network.end_batch();
  }

  for (std::uint64_t key : keys.intersection) {
    MultipartyJoinResult::JoinedRow row;
    row.key = key;
    for (std::size_t p = 0; p < tables.size(); ++p) {
      row.payloads.push_back(*by_key[p].at(key));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

ReplicaAuditReport replica_audit(sim::Network& network,
                                 const sim::SharedRandomness& shared,
                                 std::uint64_t universe,
                                 const std::vector<util::Set>& replicas,
                                 const multiparty::MultipartyParams& params) {
  multiparty::MultipartyParams with_broadcast = params;
  with_broadcast.broadcast_result = true;
  const std::uint64_t before = network.total_bits();
  const multiparty::MultipartyResult core = multiparty::coordinator_intersection(
      network, shared, universe, replicas, with_broadcast);

  ReplicaAuditReport report;
  report.fully_replicated = core.intersection;
  report.protocol_bits = network.total_bits() - before;
  std::size_t max_size = 0;
  for (const util::Set& replica : replicas) {
    report.extra_count.push_back(
        util::set_difference(replica, core.intersection).size());
    max_size = std::max(max_size, replica.size());
  }
  if (max_size > 0) {
    report.replication_factor =
        static_cast<double>(core.intersection.size()) /
        static_cast<double>(max_size);
  }
  return report;
}

std::vector<std::vector<double>> similarity_matrix(
    sim::Network& network, const sim::SharedRandomness& shared,
    std::uint64_t universe, const std::vector<util::Set>& sets,
    const core::VerificationTreeParams& tree) {
  const std::size_t m = sets.size();
  if (m != network.players()) {
    throw std::invalid_argument("similarity_matrix: players/sets mismatch");
  }
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 1.0));
  // All pairs run concurrently: a player participates in m-1 of them, but
  // the message-passing model lets it interleave, so one batch.
  network.begin_batch();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const std::uint64_t nonce = util::mix64(0x51AA, util::mix64(i, j));
      const multiparty::VerifiedRunResult run =
          multiparty::verified_two_party_intersection(
              shared, nonce, universe, sets[i], sets[j], tree,
              std::max(sets[i].size(), sets[j].size()));
      network.bill_pairwise_in_batch(i, j, run.cost);
      const std::size_t union_size =
          sets[i].size() + sets[j].size() - run.intersection.size();
      const double jaccard =
          union_size == 0 ? 1.0
                          : static_cast<double>(run.intersection.size()) /
                                static_cast<double>(union_size);
      matrix[i][j] = jaccard;
      matrix[j][i] = jaccard;
    }
  }
  network.end_batch();
  return matrix;
}

}  // namespace setint::apps
