// setint.h — single-header facade over the library.
//
// For users who want "compute the intersection and tell me what it cost"
// without assembling channels, randomness and parameter structs:
//
//   #include "setint.h"
//   auto result = setint::intersect(S, T, {.universe = 1u << 30});
//   // result.intersection, result.bits, result.rounds, result.verified
//
// The facade always runs the communication-optimal configuration
// (verification tree at r = log* k) followed by a 2k-bit certificate, so
// `verified == true` means the output is S cap T with certainty up to the
// 2^-2k certificate error.
//
// Observability: install an obs::Tracer to get a phase-attributed cost
// breakdown of the run —
//
//   obs::Tracer tracer;
//   auto result = setint::intersect(S, T, {.tracer = &tracer});
//   // result.report.phases: per-phase bits/messages/rounds rows
//   // result.report.ToJson(): machine-readable run record
//
// With no tracer the run pays nothing for the plumbing.
//
// Robustness: install a sim::FaultPlan to run over an adversarial
// transport. The facade retries certificate-failing (or undecodable) runs
// with fresh randomness per options.retry, and after budget exhaustion
// degrades to a flagged superset answer:
//
//   sim::FaultPlan plan(sim::FaultSpec{.flip_per_bit = 1e-3, .seed = 7});
//   auto result = setint::intersect(S, T, {.fault_plan = &plan});
//   // result.verified: exact (certificate passed)
//   // result.degraded: superset-only answer, honestly flagged
//
// Contract (docs/ROBUSTNESS.md): verified implies exact up to the 2^-2k
// certificate error; degraded implies intersection is a superset of
// S cap T; never both.
//
// Byzantine hardening: install a sim::Adversary to model a peer that
// LIES (crafted frames rather than random damage) and/or
// core::ResourceLimits to cap what a single run may consume:
//
//   sim::Adversary adv({.party = sim::PartyId::kBob});
//   auto result = setint::intersect(S, T, {
//       .adversary = &adv,
//       .limits = core::ResourceLimits::for_workload(1u << 20, S.size())});
//   // result.intersection is ALWAYS a subset of S (the honest side's
//   // own input), whatever the peer sends; oversized or decode-bombing
//   // frames are rejected via core::ResourceLimitError and burn retry
//   // attempts until the run degrades honestly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/budget.h"
#include "core/resource_limits.h"
#include "core/retry.h"
#include "obs/recorder.h"
#include "obs/tracer.h"
#include "sim/adversary.h"
#include "sim/chaos.h"
#include "sim/fault.h"
#include "util/set_util.h"

namespace setint {

struct IntersectOptions {
  std::uint64_t universe = 0;  // 0 = infer: max element + 1
  std::uint64_t seed = 0x5e71;
  // 0 = auto (log* k). Larger r never helps; smaller r trades rounds for
  // bits per Theorem 1.1.
  int rounds_r = 0;
  // Optional phase/metric sink (not owned). When set, the returned
  // IntersectResult::report carries the full phase breakdown.
  obs::Tracer* tracer = nullptr;
  // Optional flight recorder (not owned, single-session like the tracer):
  // a last-N ring of protocol events that auto-dumps a JSONL post-mortem
  // when an integrity failure, limit breach or degradation fires — see
  // obs/recorder.h and docs/OBSERVABILITY.md § flight recorder.
  obs::FlightRecorder* recorder = nullptr;
  // Optional unreliable-transport model (not owned, stateful).
  sim::FaultPlan* fault_plan = nullptr;
  // Optional Byzantine-peer model (not owned, stateful): one party's
  // frames are replaced with crafted ones (sim/adversary.h).
  sim::Adversary* adversary = nullptr;
  // Resource caps enforced on the run's channel and decoders. Default
  // (all zero) is disabled and free; ResourceLimits::for_workload(u, k)
  // derives generous caps an honest run never hits.
  core::ResourceLimits limits;
  // Retry budget + backoff cost + degradation budget (plus the chaos
  // restart/resume-wait budgets).
  core::RetryPolicy retry;
  // Optional crash/partition/burst schedule (not owned, stateful): player
  // crash-restart, link partition windows and Gilbert-Elliott bursty loss
  // (sim/chaos.h). Crashed sessions wait out the outage and resume from
  // their last phase checkpoint; a peer that never returns degrades the
  // run honestly (docs/ROBUSTNESS.md § crash faults).
  sim::ChaosPlan* chaos_plan = nullptr;
  // Phase-boundary checkpointing (core/checkpoint.h) for chaos recovery.
  // Off = a crash burns the whole attempt and replays it from scratch.
  bool checkpoint = true;
  // Overload governance (core/budget.h): per-session caps on bits, rounds
  // and a simulated deadline, enforced cooperatively at phase boundaries.
  // Exhaustion descends the degradation ladder (exact -> flagged superset
  // -> input fallback) — or, with budget.refuse_on_exhaustion, stops at
  // an explicit refusal (IntersectResult::refused, empty answer). Default
  // (all zero) is disabled, free, and leaves transcripts bit-identical.
  core::SessionBudgetSpec budget;
};

struct IntersectResult {
  util::Set intersection;
  std::uint64_t bits = 0;      // total communication
  std::uint64_t rounds = 0;    // message alternations
  bool verified = false;       // certificate passed (exact up to 2^-2k)
  // True when the retry budget died under an active fault plan and the
  // result is a best-effort SUPERSET of S cap T (Lemma 3.3 / the input
  // fallback) rather than the exact intersection.
  bool degraded = false;
  std::uint64_t repetitions = 1;  // certified attempts consumed
  // Chaos recovery accounting (zero without an installed chaos plan):
  // crash/partition outages waited out, and bits re-sent past the last
  // phase checkpoint while doing so.
  std::uint64_t restarts = 0;
  std::uint64_t bits_replayed = 0;
  // Overload governance: the degradation-ladder rung the run ended on
  // (exact / flagged_superset / input_fallback / refused), whether the
  // run was an explicit ResourceExhausted refusal (empty intersection,
  // neither verified nor degraded), and — when a session budget tripped —
  // which dimension (bits / rounds / deadline / pool).
  core::DegradeRung rung = core::DegradeRung::kExact;
  bool refused = false;
  core::BudgetDimension budget_reason = core::BudgetDimension::kNone;
  // Cost + phase breakdown + metrics. Phases/metrics are populated only
  // when options.tracer was set; cost is always filled.
  obs::RunReport report;
};

// Two-party exact intersection at O(k) communication. Inputs must be
// strictly increasing; throws std::invalid_argument otherwise.
IntersectResult intersect(util::SetView s, util::SetView t,
                          const IntersectOptions& options = {});

// ---------------------------------------------------------------------
// Batch execution (runtime/batch.h): many independent sessions, one call.
//
//   std::vector<setint::Instance> batch = ...;
//   auto out = setint::run_batch({.universe = 1u << 30}, batch,
//                                {.threads = 8});
//   // out.results[i] corresponds to batch[i], in order.
//
// Determinism contract: for fixed options and instances, every field of
// BatchResult — results, per-session reports, merged metrics JSON — is
// byte-for-byte independent of `threads`. Session i runs with seed
// derived purely from (options.seed, i), its own channel and its own
// tracer; per-session outputs are merged in session order after the
// barrier. Pinned by tests/batch_test.cc and the exp_batch bench.

// One session's inputs (views — the caller keeps the sets alive for the
// duration of the call).
struct Instance {
  util::SetView s;
  util::SetView t;
};

struct BatchOptions {
  // Worker threads: 1 = serial reference execution, 0 = one per hardware
  // thread, N = exactly N.
  int threads = 1;
  // Install a per-session tracer and fill results[i].report (phase
  // breakdown + metrics) plus BatchResult::metrics. Costs tracer
  // plumbing per session; off by default like the single-run facade.
  bool trace = false;
};

struct BatchResult {
  std::vector<IntersectResult> results;  // session order == instance order
  // All sessions' metric registries merged in session order (empty unless
  // BatchOptions::trace). Exact fold: equal to one registry fed every
  // session's metric stream.
  obs::MetricsRegistry metrics;
  int threads_used = 1;
};

// Runs intersect() on every instance. The per-run stateful hooks of
// IntersectOptions (tracer, fault_plan, adversary) are single-session
// objects and must be null — sharing one across concurrent sessions
// would break both thread safety and determinism, so run_batch throws
// std::invalid_argument instead (see docs/OBSERVABILITY.md § thread
// affinity). Use BatchOptions::trace for per-session tracing.
BatchResult run_batch(const IntersectOptions& options,
                      std::span<const Instance> instances,
                      const BatchOptions& batch = {});

// The seed session i of run_batch derives from `master_seed` — exposed
// so a caller can reproduce any single batch session with
// setint::intersect.
std::uint64_t batch_session_seed(std::uint64_t master_seed,
                                 std::uint64_t session_index);

}  // namespace setint
