// setint.h — single-header facade over the library.
//
// For users who want "compute the intersection and tell me what it cost"
// without assembling channels, randomness and parameter structs:
//
//   #include "setint.h"
//   auto result = setint::intersect(S, T, {.universe = 1u << 30});
//   // result.intersection, result.bits, result.rounds, result.verified
//
// The facade always runs the communication-optimal configuration
// (verification tree at r = log* k) followed by a 2k-bit certificate, so
// `verified == true` means the output is S cap T with certainty up to the
// 2^-2k certificate error.
#pragma once

#include <cstdint>

#include "util/set_util.h"

namespace setint {

struct IntersectOptions {
  std::uint64_t universe = 0;  // 0 = infer: max element + 1
  std::uint64_t seed = 0x5e71;
  // 0 = auto (log* k). Larger r never helps; smaller r trades rounds for
  // bits per Theorem 1.1.
  int rounds_r = 0;
};

struct IntersectResult {
  util::Set intersection;
  std::uint64_t bits = 0;      // total communication
  std::uint64_t rounds = 0;    // message alternations
  bool verified = false;       // certificate passed (exact up to 2^-2k)
  std::uint64_t repetitions = 1;
};

// Two-party exact intersection at O(k) communication. Inputs must be
// strictly increasing; throws std::invalid_argument otherwise.
IntersectResult intersect(util::SetView s, util::SetView t,
                          const IntersectOptions& options = {});

}  // namespace setint
