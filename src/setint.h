// setint.h — single-header facade over the library.
//
// For users who want "compute the intersection and tell me what it cost"
// without assembling channels, randomness and parameter structs:
//
//   #include "setint.h"
//   auto result = setint::intersect(S, T, {.universe = 1u << 30});
//   // result.intersection, result.bits, result.rounds, result.verified
//
// The facade always runs the communication-optimal configuration
// (verification tree at r = log* k) followed by a 2k-bit certificate, so
// `verified == true` means the output is S cap T with certainty up to the
// 2^-2k certificate error.
//
// Observability: install an obs::Tracer to get a phase-attributed cost
// breakdown of the run —
//
//   obs::Tracer tracer;
//   auto result = setint::intersect(S, T, {.tracer = &tracer});
//   // result.report.phases: per-phase bits/messages/rounds rows
//   // result.report.ToJson(): machine-readable run record
//
// With no tracer the run pays nothing for the plumbing.
#pragma once

#include <cstdint>

#include "obs/tracer.h"
#include "util/set_util.h"

namespace setint {

struct IntersectOptions {
  std::uint64_t universe = 0;  // 0 = infer: max element + 1
  std::uint64_t seed = 0x5e71;
  // 0 = auto (log* k). Larger r never helps; smaller r trades rounds for
  // bits per Theorem 1.1.
  int rounds_r = 0;
  // Optional phase/metric sink (not owned). When set, the returned
  // IntersectResult::report carries the full phase breakdown.
  obs::Tracer* tracer = nullptr;
};

struct IntersectResult {
  util::Set intersection;
  std::uint64_t bits = 0;      // total communication
  std::uint64_t rounds = 0;    // message alternations
  bool verified = false;       // certificate passed (exact up to 2^-2k)
  std::uint64_t repetitions = 1;
  // Cost + phase breakdown + metrics. Phases/metrics are populated only
  // when options.tracer was set; cost is always filled.
  obs::RunReport report;
};

// Two-party exact intersection at O(k) communication. Inputs must be
// strictly increasing; throws std::invalid_argument otherwise.
IntersectResult intersect(util::SetView s, util::SetView t,
                          const IntersectOptions& options = {});

}  // namespace setint
