#include "setint.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/verification_tree.h"
#include "multiparty/coordinator.h"
#include "obs/envelope.h"
#include "runtime/batch.h"
#include "sim/randomness.h"
#include "util/rng.h"

namespace setint {

IntersectResult intersect(util::SetView s, util::SetView t,
                          const IntersectOptions& options) {
  // Degenerate inputs: with either side empty the intersection is empty
  // by definition and no protocol run is needed — this also covers
  // universe = 0 with both sets empty, which would otherwise bottom out
  // in the log*/floor-log2 parameter derivations. Zero cost, verified
  // (exact with certainty), zero attempts consumed.
  if (s.empty() || t.empty()) {
    std::uint64_t bound = options.universe;
    if (bound == 0) {
      // Inferred universe, same rule as the main path: max element + 1
      // (so the check below reduces to canonicality).
      std::uint64_t max_element = 0;
      if (!s.empty()) max_element = s.back();
      if (!t.empty()) max_element = std::max(max_element, t.back());
      bound = max_element + 1;
    }
    util::validate_set(s, bound);
    util::validate_set(t, bound);
    IntersectResult empty;
    empty.verified = true;
    empty.repetitions = 0;
    if (options.tracer != nullptr) {
      empty.report = obs::make_run_report(sim::CostStats{}, *options.tracer);
    }
    return empty;
  }
  std::uint64_t universe = options.universe;
  if (universe == 0) {
    std::uint64_t max_element = 0;
    if (!s.empty()) max_element = s.back();
    if (!t.empty()) max_element = std::max(max_element, t.back());
    universe = max_element + 1;
  }
  core::VerificationTreeParams params;
  params.rounds_r = options.rounds_r;
  const std::size_t k = std::max<std::size_t>({s.size(), t.size(), 2});

  sim::SharedRandomness shared(options.seed);
  const multiparty::VerifiedRunResult run =
      multiparty::verified_two_party_intersection(
          shared, options.seed, universe, s, t, params, k, options.tracer,
          options.retry, options.fault_plan, options.adversary,
          options.limits.enabled() ? &options.limits : nullptr,
          options.recorder);
  IntersectResult result;
  result.intersection = run.intersection;
  result.bits = run.cost.bits_total;
  result.rounds = run.cost.rounds;
  result.repetitions = run.repetitions;
  // On a reliable channel the run always certifies or falls back to the
  // exact deterministic exchange; under a fault plan it may instead
  // degrade to a flagged superset.
  result.verified = run.verified;
  result.degraded = run.degraded;
  if (options.tracer != nullptr) {
    // HDR distributions of the run's headline costs — deterministic (no
    // clocks), so the batch engine's serial-vs-parallel byte-equality
    // contract extends to them.
    options.tracer->metrics().hdr("run.bits").observe(run.cost.bits_total);
    options.tracer->metrics().hdr("run.rounds").observe(run.cost.rounds);
    result.report = obs::make_run_report(run.cost, *options.tracer);
    // Theory-conformance audit of the clean-protocol path. Degraded,
    // faulted or Byzantine runs are outside the Theorem 3.6 cost model
    // (injected duplicates and crafted frames bill real bits), so they
    // carry no envelope rather than a misleading one.
    if (!run.degraded && options.fault_plan == nullptr &&
        options.adversary == nullptr) {
      obs::EnvelopeSample sample;
      sample.k = k;
      sample.r = options.rounds_r;
      sample.bits = run.cost.bits_total;
      sample.rounds = run.cost.rounds;
      sample.repetitions = run.repetitions;
      result.report.envelope =
          obs::audit_single_run("verified_intersection", sample);
    }
  } else {
    result.report.cost = run.cost;
  }
  return result;
}

std::uint64_t batch_session_seed(std::uint64_t master_seed,
                                 std::uint64_t session_index) {
  // Label-decorrelated so a batch session never collides with the plain
  // facade's direct use of the master seed (or with bench::seed_for).
  return util::mix64(master_seed, util::mix64(0xBA7C4u, session_index));
}

BatchResult run_batch(const IntersectOptions& options,
                      std::span<const Instance> instances,
                      const BatchOptions& batch) {
  if (options.tracer != nullptr || options.recorder != nullptr ||
      options.fault_plan != nullptr || options.adversary != nullptr) {
    throw std::invalid_argument(
        "run_batch: tracer/recorder/fault_plan/adversary are single-session "
        "stateful objects and cannot be shared across batch sessions; use "
        "BatchOptions::trace for per-session tracing");
  }

  BatchResult out;
  out.threads_used = runtime::resolve_threads(batch.threads);
  out.results.resize(instances.size());
  // Per-session tracers survive until the post-barrier merge so metrics
  // can be folded in session order.
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  if (batch.trace) tracers.resize(instances.size());

  runtime::run_sessions(
      instances.size(), batch.threads, [&](std::size_t i) {
        IntersectOptions session = options;
        session.seed = batch_session_seed(options.seed, i);
        if (batch.trace) {
          tracers[i] = std::make_unique<obs::Tracer>();
          session.tracer = tracers[i].get();
        }
        out.results[i] = intersect(instances[i].s, instances[i].t, session);
      });

  // Post-barrier, session-order merge: the fold is exact (counters and
  // histograms are sums), so the merged registry — and its JSON — cannot
  // depend on which thread ran which session.
  if (batch.trace) {
    for (const auto& tracer : tracers) {
      out.metrics.merge(tracer->metrics());
    }
  }
  return out;
}

}  // namespace setint
