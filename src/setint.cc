#include "setint.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/verification_tree.h"
#include "multiparty/coordinator.h"
#include "obs/envelope.h"
#include "runtime/batch.h"
#include "sim/randomness.h"
#include "util/rng.h"

namespace setint {

namespace {

// %.17g round-trips every double exactly through text (shortest would be
// nicer but 17 significant digits is always sufficient).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string join_set(util::SetView s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(s[i]);
  }
  return out;
}

// Writes everything tools/replay needs to re-execute this session into
// the recorder's context block, so any incident dump the session produces
// is self-describing. Per-link fault overlays installed directly on a
// ChaosPlan (set_link_faults) are not part of ChaosSpec and are not
// serialized; the replay tool covers the facade-reachable configuration.
void set_replay_context(obs::FlightRecorder& rec, util::SetView s,
                        util::SetView t, std::uint64_t universe,
                        const IntersectOptions& options) {
  rec.set_context("kind", "two_party");
  rec.set_context("seed", std::to_string(options.seed));
  rec.set_context("universe", std::to_string(universe));
  rec.set_context("rounds_r", std::to_string(options.rounds_r));
  rec.set_context("s", join_set(s));
  rec.set_context("t", join_set(t));
  rec.set_context("checkpoint", options.checkpoint ? "1" : "0");
  rec.set_context("retry.max_attempts",
                  std::to_string(options.retry.max_attempts));
  rec.set_context("retry.backoff_rounds",
                  std::to_string(options.retry.backoff_rounds));
  rec.set_context("retry.backoff_multiplier",
                  fmt_double(options.retry.backoff_multiplier));
  rec.set_context("retry.backoff_cap_rounds",
                  std::to_string(options.retry.backoff_cap_rounds));
  rec.set_context("retry.backoff_jitter",
                  fmt_double(options.retry.backoff_jitter));
  rec.set_context("retry.degraded_attempts",
                  std::to_string(options.retry.degraded_attempts));
  rec.set_context("retry.max_restarts",
                  std::to_string(options.retry.max_restarts));
  rec.set_context("retry.max_resume_wait_rounds",
                  std::to_string(options.retry.max_resume_wait_rounds));
  if (options.budget.enabled()) {
    rec.set_context("budget.max_bits", std::to_string(options.budget.max_bits));
    rec.set_context("budget.max_rounds",
                    std::to_string(options.budget.max_rounds));
    rec.set_context("budget.deadline_ticks",
                    std::to_string(options.budget.deadline_ticks));
    rec.set_context("budget.refuse_on_exhaustion",
                    options.budget.refuse_on_exhaustion ? "1" : "0");
  }
  if (options.limits.enabled()) {
    rec.set_context("limits.max_message_bits",
                    std::to_string(options.limits.max_message_bits));
    rec.set_context("limits.max_total_bits",
                    std::to_string(options.limits.max_total_bits));
    rec.set_context("limits.max_rounds",
                    std::to_string(options.limits.max_rounds));
    rec.set_context("limits.max_decoded_items",
                    std::to_string(options.limits.max_decoded_items));
  }
  if (options.fault_plan != nullptr) {
    const sim::FaultSpec& f = options.fault_plan->spec();
    rec.set_context("fault.flip_per_bit", fmt_double(f.flip_per_bit));
    rec.set_context("fault.truncate_prob", fmt_double(f.truncate_prob));
    rec.set_context("fault.drop_prob", fmt_double(f.drop_prob));
    rec.set_context("fault.duplicate_prob", fmt_double(f.duplicate_prob));
    rec.set_context("fault.delay_prob", fmt_double(f.delay_prob));
    rec.set_context("fault.delay_rounds", std::to_string(f.delay_rounds));
    rec.set_context("fault.seed", std::to_string(f.seed));
  }
  if (options.chaos_plan != nullptr) {
    const sim::ChaosSpec& c = options.chaos_plan->spec();
    rec.set_context("chaos.players", std::to_string(c.players));
    rec.set_context("chaos.seed", std::to_string(c.seed));
    rec.set_context("chaos.protocol_seed",
                    std::to_string(options.chaos_plan->protocol_seed()));
    rec.set_context("chaos.crash_prob", fmt_double(c.crash.crash_prob));
    rec.set_context("chaos.restart_ticks",
                    std::to_string(c.crash.restart_ticks));
    rec.set_context("chaos.max_crashes", std::to_string(c.crash.max_crashes));
    std::string overrides;
    for (const auto& [player, sched] : c.crash_overrides) {
      if (!overrides.empty()) overrides += ';';
      overrides += std::to_string(player) + ':' +
                   fmt_double(sched.crash_prob) + ':' +
                   std::to_string(sched.restart_ticks) + ':' +
                   std::to_string(sched.max_crashes);
    }
    if (!overrides.empty()) rec.set_context("chaos.overrides", overrides);
    const sim::GilbertElliott& g = c.burst;
    rec.set_context("chaos.burst",
                    fmt_double(g.p_good_to_bad) + ',' +
                        fmt_double(g.p_bad_to_good) + ',' +
                        fmt_double(g.loss_good) + ',' + fmt_double(g.loss_bad) +
                        ',' + fmt_double(g.flip_good) + ',' +
                        fmt_double(g.flip_bad));
    std::string partitions;
    for (const sim::PartitionWindow& w : c.partitions) {
      if (!partitions.empty()) partitions += ';';
      partitions += std::to_string(w.a) + ':' + std::to_string(w.b) + ':' +
                    std::to_string(w.start_tick) + ':' +
                    std::to_string(w.end_tick);
    }
    if (!partitions.empty()) rec.set_context("chaos.partitions", partitions);
  }
  // An adversary's crafted frames depend on live protocol state, so a
  // session with one is recorded but declared non-replayable.
  if (options.adversary != nullptr) rec.set_context("adversary", "1");
}

}  // namespace

IntersectResult intersect(util::SetView s, util::SetView t,
                          const IntersectOptions& options) {
  // Degenerate inputs: with either side empty the intersection is empty
  // by definition and no protocol run is needed — this also covers
  // universe = 0 with both sets empty, which would otherwise bottom out
  // in the log*/floor-log2 parameter derivations. Zero cost, verified
  // (exact with certainty), zero attempts consumed.
  if (s.empty() || t.empty()) {
    std::uint64_t bound = options.universe;
    if (bound == 0) {
      // Inferred universe, same rule as the main path: max element + 1
      // (so the check below reduces to canonicality).
      std::uint64_t max_element = 0;
      if (!s.empty()) max_element = s.back();
      if (!t.empty()) max_element = std::max(max_element, t.back());
      bound = max_element + 1;
    }
    util::validate_set(s, bound);
    util::validate_set(t, bound);
    IntersectResult empty;
    empty.verified = true;
    empty.repetitions = 0;
    if (options.tracer != nullptr) {
      empty.report = obs::make_run_report(sim::CostStats{}, *options.tracer);
    }
    return empty;
  }
  std::uint64_t universe = options.universe;
  if (universe == 0) {
    std::uint64_t max_element = 0;
    if (!s.empty()) max_element = s.back();
    if (!t.empty()) max_element = std::max(max_element, t.back());
    universe = max_element + 1;
  }
  core::VerificationTreeParams params;
  params.rounds_r = options.rounds_r;
  const std::size_t k = std::max<std::size_t>({s.size(), t.size(), 2});

  sim::SharedRandomness shared(options.seed);
  if (options.recorder != nullptr) {
    set_replay_context(*options.recorder, s, t, universe, options);
  }
  multiparty::SessionHooks hooks;
  hooks.tracer = options.tracer;
  hooks.faults = options.fault_plan;
  hooks.adversary = options.adversary;
  hooks.limits = options.limits.enabled() ? &options.limits : nullptr;
  hooks.recorder = options.recorder;
  hooks.chaos = options.chaos_plan;
  hooks.checkpoint = options.checkpoint;
  hooks.budget = options.budget;
  const multiparty::VerifiedRunResult run =
      multiparty::verified_two_party_intersection(
          shared, options.seed, universe, s, t, params, k, options.retry,
          hooks);
  IntersectResult result;
  result.intersection = run.intersection;
  result.bits = run.cost.bits_total;
  result.rounds = run.cost.rounds;
  result.repetitions = run.repetitions;
  result.restarts = run.restarts;
  result.bits_replayed = run.bits_replayed;
  // On a reliable channel the run always certifies or falls back to the
  // exact deterministic exchange; under a fault plan it may instead
  // degrade to a flagged superset.
  result.verified = run.verified;
  result.degraded = run.degraded;
  result.rung = run.rung;
  result.refused = run.refused;
  result.budget_reason = run.budget_reason;
  if (options.tracer != nullptr) {
    // HDR distributions of the run's headline costs — deterministic (no
    // clocks), so the batch engine's serial-vs-parallel byte-equality
    // contract extends to them.
    options.tracer->metrics().hdr("run.bits").observe(run.cost.bits_total);
    options.tracer->metrics().hdr("run.rounds").observe(run.cost.rounds);
    result.report = obs::make_run_report(run.cost, *options.tracer);
    // Theory-conformance audit of the clean-protocol path. Degraded,
    // faulted or Byzantine runs are outside the Theorem 3.6 cost model
    // (injected duplicates and crafted frames bill real bits), so they
    // carry no envelope rather than a misleading one.
    if (!run.degraded && !run.refused && options.fault_plan == nullptr &&
        options.adversary == nullptr && options.chaos_plan == nullptr) {
      obs::EnvelopeSample sample;
      sample.k = k;
      sample.r = options.rounds_r;
      sample.bits = run.cost.bits_total;
      sample.rounds = run.cost.rounds;
      sample.repetitions = run.repetitions;
      result.report.envelope =
          obs::audit_single_run("verified_intersection", sample);
    }
  } else {
    result.report.cost = run.cost;
  }
  return result;
}

std::uint64_t batch_session_seed(std::uint64_t master_seed,
                                 std::uint64_t session_index) {
  // Label-decorrelated so a batch session never collides with the plain
  // facade's direct use of the master seed (or with bench::seed_for).
  return util::mix64(master_seed, util::mix64(0xBA7C4u, session_index));
}

BatchResult run_batch(const IntersectOptions& options,
                      std::span<const Instance> instances,
                      const BatchOptions& batch) {
  if (options.tracer != nullptr || options.recorder != nullptr ||
      options.fault_plan != nullptr || options.adversary != nullptr ||
      options.chaos_plan != nullptr) {
    throw std::invalid_argument(
        "run_batch: tracer/recorder/fault_plan/adversary/chaos_plan are "
        "single-session stateful objects and cannot be shared across batch "
        "sessions; use BatchOptions::trace for per-session tracing");
  }

  BatchResult out;
  out.threads_used = runtime::resolve_threads(batch.threads);
  out.results.resize(instances.size());
  // Per-session tracers survive until the post-barrier merge so metrics
  // can be folded in session order.
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  if (batch.trace) tracers.resize(instances.size());

  runtime::run_sessions(
      instances.size(), batch.threads, [&](std::size_t i) {
        IntersectOptions session = options;
        session.seed = batch_session_seed(options.seed, i);
        if (batch.trace) {
          tracers[i] = std::make_unique<obs::Tracer>();
          session.tracer = tracers[i].get();
        }
        out.results[i] = intersect(instances[i].s, instances[i].t, session);
      });

  // Post-barrier, session-order merge: the fold is exact (counters and
  // histograms are sums), so the merged registry — and its JSON — cannot
  // depend on which thread ran which session.
  if (batch.trace) {
    for (const auto& tracer : tracers) {
      out.metrics.merge(tracer->metrics());
    }
  }
  return out;
}

}  // namespace setint
