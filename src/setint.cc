#include "setint.h"

#include <algorithm>

#include "core/verification_tree.h"
#include "multiparty/coordinator.h"
#include "sim/randomness.h"

namespace setint {

IntersectResult intersect(util::SetView s, util::SetView t,
                          const IntersectOptions& options) {
  std::uint64_t universe = options.universe;
  if (universe == 0) {
    std::uint64_t max_element = 0;
    if (!s.empty()) max_element = s.back();
    if (!t.empty()) max_element = std::max(max_element, t.back());
    universe = max_element + 1;
  }
  core::VerificationTreeParams params;
  params.rounds_r = options.rounds_r;
  const std::size_t k = std::max<std::size_t>({s.size(), t.size(), 2});

  sim::SharedRandomness shared(options.seed);
  const multiparty::VerifiedRunResult run =
      multiparty::verified_two_party_intersection(
          shared, options.seed, universe, s, t, params, k, options.tracer,
          options.retry, options.fault_plan);
  IntersectResult result;
  result.intersection = run.intersection;
  result.bits = run.cost.bits_total;
  result.rounds = run.cost.rounds;
  result.repetitions = run.repetitions;
  // On a reliable channel the run always certifies or falls back to the
  // exact deterministic exchange; under a fault plan it may instead
  // degrade to a flagged superset.
  result.verified = run.verified;
  result.degraded = run.degraded;
  if (options.tracer != nullptr) {
    result.report = obs::make_run_report(run.cost, *options.tracer);
  } else {
    result.report.cost = run.cost;
  }
  return result;
}

}  // namespace setint
