// Example: a distributed relational join between two servers.
//
// The paper's motivating database scenario: an orders table on one server,
// an invoices table on another, joined on a shared key. The servers run
// the intersection protocol on their key sets and then exchange payloads
// for matched keys only — versus the naive plan of shipping a whole table.
//
//   ./build/examples/example_distributed_join
#include <cstdio>
#include <string>

#include "apps/join.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main() {
  using namespace setint;

  // Server A: 20,000 orders keyed by customer id; Server B: 20,000
  // invoices. About 500 customers appear in both.
  const std::uint64_t universe = std::uint64_t{1} << 34;
  const std::size_t table_size = 20'000;
  const std::size_t expected_matches = 500;

  util::Rng wrng(2024);
  const util::SetPair keys =
      util::random_set_pair(wrng, universe, table_size, expected_matches);

  std::vector<apps::Row> orders;
  for (std::uint64_t key : keys.s) {
    orders.push_back(apps::Row{key, "order: customer=" + std::to_string(key) +
                                        " total=" +
                                        std::to_string(key % 997) + ".00"});
  }
  std::vector<apps::Row> invoices;
  for (std::uint64_t key : keys.t) {
    invoices.push_back(apps::Row{
        key, "invoice: customer=" + std::to_string(key) + " status=paid"});
  }

  sim::Channel channel;
  sim::SharedRandomness shared(99);
  const apps::JoinResult join = apps::distributed_join(
      channel, shared, /*nonce=*/0, universe, orders, invoices);

  std::printf("tables: %zu orders, %zu invoices, %zu joined rows\n",
              orders.size(), invoices.size(), join.rows.size());
  std::printf("first joined rows:\n");
  for (std::size_t i = 0; i < join.rows.size() && i < 3; ++i) {
    std::printf("  key %llu | %s | %s\n",
                static_cast<unsigned long long>(join.rows[i].key),
                join.rows[i].left_payload.c_str(),
                join.rows[i].right_payload.c_str());
  }
  std::printf("\ncommunication plan comparison:\n");
  std::printf("  intersection protocol : %llu bits\n",
              static_cast<unsigned long long>(join.key_protocol_bits));
  std::printf("  matched payloads      : %llu bits\n",
              static_cast<unsigned long long>(join.payload_bits));
  std::printf("  TOTAL                 : %llu bits\n",
              static_cast<unsigned long long>(join.key_protocol_bits +
                                              join.payload_bits));
  std::printf("  naive (ship table)    : %llu bits  (%.1fx more)\n",
              static_cast<unsigned long long>(join.naive_bits),
              static_cast<double>(join.naive_bits) /
                  static_cast<double>(join.key_protocol_bits +
                                      join.payload_bits));
  return join.rows.size() == expected_matches ? 0 : 1;
}
