// Quickstart: two servers compute the exact intersection of their record
// sets with O(k) communication in O(log* k) stages (Theorem 1.1).
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/example_quickstart
#include <cstdio>

#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/set_util.h"

int main() {
  using namespace setint;

  // Two servers, each holding up to k = 4096 record ids from a universe of
  // a billion, sharing about half their records.
  const std::uint64_t universe = 1'000'000'000;
  const std::size_t k = 4096;
  util::Rng workload_rng(/*seed=*/42);
  const util::SetPair instance =
      util::random_set_pair(workload_rng, universe, k, /*shared=*/k / 2);

  // The protocol: a simulated channel that meters every bit, plus a common
  // random string both parties can see.
  sim::Channel channel;
  sim::SharedRandomness shared(/*seed=*/7);

  core::VerificationTreeParams params;  // defaults: r = log* k, k buckets
  core::VerificationTreeDiag diag;
  const core::IntersectionOutput out = core::verification_tree_intersection(
      channel, shared, /*nonce=*/0, universe, instance.s, instance.t, params,
      &diag);

  const bool alice_ok = out.alice == instance.expected_intersection;
  const bool bob_ok = out.bob == instance.expected_intersection;

  std::printf("universe n = %llu, k = %zu, |S cap T| = %zu\n",
              static_cast<unsigned long long>(universe), k,
              instance.expected_intersection.size());
  std::printf("protocol output: alice %s, bob %s\n",
              alice_ok ? "exact" : "WRONG", bob_ok ? "exact" : "WRONG");
  std::printf("communication: %llu bits total (%.2f bits per element)\n",
              static_cast<unsigned long long>(channel.cost().bits_total),
              static_cast<double>(channel.cost().bits_total) / k);
  std::printf("rounds: %llu   messages: %llu\n",
              static_cast<unsigned long long>(channel.cost().rounds),
              static_cast<unsigned long long>(channel.cost().messages));
  std::printf(
      "yardstick: naive exchange would cost ~ k log2(n/k) = %.0f bits\n",
      static_cast<double>(k) * 18);
  std::printf("Basic-Intersection re-runs: %llu across %zu buckets\n",
              static_cast<unsigned long long>(diag.total_bi_runs), k);
  return (alice_ok && bob_ok) ? 0 : 1;
}
