// setint_cli — run any of the library's protocols on two key files.
//
// Usage:
//   example_setint_cli <file_a> <file_b> [--protocol=NAME] [--r=N]
//                      [--universe=N] [--seed=N] [--print]
//
// Each input file holds one unsigned 64-bit key per line. Protocols:
//   tree (default) | one-round | bucket-eq | toy | private-coin | naive
//
// Prints the intersection size (and the elements with --print) plus the
// exact communication cost the exchange would have taken.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "util/set_util.h"

namespace {

using namespace setint;

util::Set load_keys(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  util::Set keys;
  std::uint64_t v = 0;
  while (in >> v) keys.push_back(v);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::unique_ptr<core::IntersectionProtocol> make_protocol(
    const std::string& name, int r) {
  if (name == "tree") {
    core::VerificationTreeParams params;
    params.rounds_r = r;
    return std::make_unique<core::VerificationTreeProtocol>(params);
  }
  if (name == "one-round") return std::make_unique<core::OneRoundHashProtocol>();
  if (name == "bucket-eq") return std::make_unique<core::BucketEqProtocol>();
  if (name == "toy") return std::make_unique<core::ToyBucketProtocol>();
  if (name == "private-coin") {
    core::VerificationTreeParams params;
    params.rounds_r = r;
    return std::make_unique<core::PrivateCoinProtocol>(params);
  }
  if (name == "naive") {
    return std::make_unique<core::DeterministicExchangeProtocol>();
  }
  throw std::runtime_error("unknown protocol: " + name);
}

std::uint64_t parse_u64(const char* s) { return std::strtoull(s, nullptr, 10); }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <file_a> <file_b> [--protocol=tree|one-round|"
                 "bucket-eq|toy|private-coin|naive] [--r=N] [--universe=N] "
                 "[--seed=N] [--print]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::string protocol_name = "tree";
    int r = 0;
    std::uint64_t universe = 0;
    std::uint64_t seed = 0x5e71;
    bool print_elements = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--protocol=", 0) == 0) protocol_name = arg.substr(11);
      else if (arg.rfind("--r=", 0) == 0) r = std::atoi(arg.c_str() + 4);
      else if (arg.rfind("--universe=", 0) == 0) universe = parse_u64(arg.c_str() + 11);
      else if (arg.rfind("--seed=", 0) == 0) seed = parse_u64(arg.c_str() + 7);
      else if (arg == "--print") print_elements = true;
      else throw std::runtime_error("unknown flag: " + arg);
    }

    const util::Set a = load_keys(argv[1]);
    const util::Set b = load_keys(argv[2]);
    if (universe == 0) {
      std::uint64_t max_element = 0;
      if (!a.empty()) max_element = a.back();
      if (!b.empty()) max_element = std::max(max_element, b.back());
      universe = max_element + 1;
    }

    const auto protocol = make_protocol(protocol_name, r);
    const core::RunResult result = protocol->run(seed, universe, a, b);

    const util::Set truth = util::set_intersection(a, b);
    std::printf("protocol      : %s\n", protocol->name().c_str());
    std::printf("inputs        : |A| = %zu, |B| = %zu, universe = %llu\n",
                a.size(), b.size(),
                static_cast<unsigned long long>(universe));
    std::printf("intersection  : %zu elements (%s)\n",
                result.output.alice.size(),
                result.output.alice == truth ? "exact" : "INEXACT");
    std::printf("communication : %llu bits in %llu rounds (%llu messages)\n",
                static_cast<unsigned long long>(result.cost.bits_total),
                static_cast<unsigned long long>(result.cost.rounds),
                static_cast<unsigned long long>(result.cost.messages));
    if (print_elements) {
      for (std::uint64_t x : result.output.alice) {
        std::printf("%llu\n", static_cast<unsigned long long>(x));
      }
    }
    return result.output.alice == truth ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
