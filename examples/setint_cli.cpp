// setint_cli — run any of the library's protocols on two key files.
//
// Usage:
//   example_setint_cli <file_a> <file_b> [--protocol=NAME] [--r=N]
//                      [--universe=N] [--seed=N] [--print]
//                      [--trace-out=PATH]
//
// Each input file holds one unsigned 64-bit key per line. Protocols:
//   tree (default) | one-round | bucket-eq | toy | private-coin | naive
//
// Prints the intersection size (and the elements with --print) plus the
// exact communication cost the exchange would have taken.
//
// --trace-out=PATH runs the library facade (the verified tree pipeline)
// with full phase tracing and writes PATH as a Chrome-trace-format
// timeline (load in chrome://tracing or https://ui.perfetto.dev; 1 "us" =
// 1 transmitted bit) plus PATH.report.json with the phase breakdown and
// metric snapshot. Only the default tree protocol can be traced this way.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "setint.h"
#include "util/set_util.h"

namespace {

using namespace setint;

util::Set load_keys(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  util::Set keys;
  std::uint64_t v = 0;
  while (in >> v) keys.push_back(v);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::unique_ptr<core::IntersectionProtocol> make_protocol(
    const std::string& name, int r) {
  if (name == "tree") {
    core::VerificationTreeParams params;
    params.rounds_r = r;
    return std::make_unique<core::VerificationTreeProtocol>(params);
  }
  if (name == "one-round") return std::make_unique<core::OneRoundHashProtocol>();
  if (name == "bucket-eq") return std::make_unique<core::BucketEqProtocol>();
  if (name == "toy") return std::make_unique<core::ToyBucketProtocol>();
  if (name == "private-coin") {
    core::VerificationTreeParams params;
    params.rounds_r = r;
    return std::make_unique<core::PrivateCoinProtocol>(params);
  }
  if (name == "naive") {
    return std::make_unique<core::DeterministicExchangeProtocol>();
  }
  throw std::runtime_error("unknown protocol: " + name);
}

std::uint64_t parse_u64(const char* s) { return std::strtoull(s, nullptr, 10); }

// Facade run with full tracing; writes the Chrome trace + run report and
// prints the top of the phase breakdown.
int run_traced(const util::Set& a, const util::Set& b, std::uint64_t universe,
               std::uint64_t seed, int r, bool print_elements,
               const std::string& trace_path) {
  obs::Tracer tracer(/*record_events=*/true);
  IntersectOptions options;
  options.universe = universe;
  options.seed = seed;
  options.rounds_r = r;
  options.tracer = &tracer;
  const IntersectResult result = intersect(a, b, options);

  std::ostringstream trace;
  obs::write_chrome_trace(tracer, trace);
  obs::write_file(trace_path, trace.str());
  const std::string report_path = trace_path + ".report.json";
  obs::write_file(report_path, result.report.ToJson().dump(2));

  const util::Set truth = util::set_intersection(a, b);
  std::printf("protocol      : verified tree facade (traced)\n");
  std::printf("inputs        : |A| = %zu, |B| = %zu, universe = %llu\n",
              a.size(), b.size(), static_cast<unsigned long long>(universe));
  std::printf("intersection  : %zu elements (%s)\n",
              result.intersection.size(),
              result.intersection == truth ? "exact" : "INEXACT");
  std::printf("communication : %llu bits in %llu rounds\n",
              static_cast<unsigned long long>(result.bits),
              static_cast<unsigned long long>(result.rounds));
  std::printf("trace         : %s\n", trace_path.c_str());
  std::printf("run report    : %s\n", report_path.c_str());
  std::printf("\nphase breakdown (bits, total incl. children):\n");
  for (const obs::PhaseRow& row : result.report.phases) {
    if (row.depth > 2) continue;  // keep the console summary shallow
    std::printf("  %-48s %12llu\n",
                (std::string(static_cast<std::size_t>(
                                 2 * (row.depth + 1)),
                             ' ') +
                 (row.path.empty() ? "(total)" : row.path))
                    .c_str(),
                static_cast<unsigned long long>(row.bits));
  }
  if (print_elements) {
    for (std::uint64_t x : result.intersection) {
      std::printf("%llu\n", static_cast<unsigned long long>(x));
    }
  }
  return result.intersection == truth ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <file_a> <file_b> [--protocol=tree|one-round|"
                 "bucket-eq|toy|private-coin|naive] [--r=N] [--universe=N] "
                 "[--seed=N] [--print] [--trace-out=PATH]\n",
                 argv[0]);
    return 2;
  }
  try {
    std::string protocol_name = "tree";
    int r = 0;
    std::uint64_t universe = 0;
    std::uint64_t seed = 0x5e71;
    bool print_elements = false;
    std::string trace_path;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--protocol=", 0) == 0) protocol_name = arg.substr(11);
      else if (arg.rfind("--r=", 0) == 0) r = std::atoi(arg.c_str() + 4);
      else if (arg.rfind("--universe=", 0) == 0) universe = parse_u64(arg.c_str() + 11);
      else if (arg.rfind("--seed=", 0) == 0) seed = parse_u64(arg.c_str() + 7);
      else if (arg.rfind("--trace-out=", 0) == 0) trace_path = arg.substr(12);
      else if (arg == "--print") print_elements = true;
      else throw std::runtime_error("unknown flag: " + arg);
    }

    const util::Set a = load_keys(argv[1]);
    const util::Set b = load_keys(argv[2]);
    if (universe == 0) {
      std::uint64_t max_element = 0;
      if (!a.empty()) max_element = a.back();
      if (!b.empty()) max_element = std::max(max_element, b.back());
      universe = max_element + 1;
    }

    if (!trace_path.empty()) {
      if (protocol_name != "tree") {
        throw std::runtime_error(
            "--trace-out drives the facade's verified tree pipeline; drop "
            "--protocol=" +
            protocol_name + " or the trace flag");
      }
      return run_traced(a, b, universe, seed, r, print_elements, trace_path);
    }

    const auto protocol = make_protocol(protocol_name, r);
    const core::RunResult result = protocol->run(seed, universe, a, b);

    const util::Set truth = util::set_intersection(a, b);
    std::printf("protocol      : %s\n", protocol->name().c_str());
    std::printf("inputs        : |A| = %zu, |B| = %zu, universe = %llu\n",
                a.size(), b.size(),
                static_cast<unsigned long long>(universe));
    std::printf("intersection  : %zu elements (%s)\n",
                result.output.alice.size(),
                result.output.alice == truth ? "exact" : "INEXACT");
    std::printf("communication : %llu bits in %llu rounds (%llu messages)\n",
                static_cast<unsigned long long>(result.cost.bits_total),
                static_cast<unsigned long long>(result.cost.rounds),
                static_cast<unsigned long long>(result.cost.messages));
    if (print_elements) {
      for (std::uint64_t x : result.output.alice) {
        std::printf("%llu\n", static_cast<unsigned long long>(x));
      }
    }
    return result.output.alice == truth ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
