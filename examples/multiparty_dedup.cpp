// Example: m replica servers finding their common records
// (Corollary 4.1's message-passing protocol).
//
// A record is fully replicated iff it appears on every server; the m-way
// intersection finds exactly those. The coordinator protocol groups
// servers, verifies every pairwise result with 2k-bit certificates, and
// recurses over group coordinators.
//
//   ./build/examples/example_multiparty_dedup
#include <cstdio>

#include "multiparty/coordinator.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main() {
  using namespace setint;

  const std::size_t servers = 48;
  const std::size_t records_per_server = 256;
  const std::size_t fully_replicated = 64;
  const std::uint64_t universe = std::uint64_t{1} << 32;

  util::Rng wrng(11);
  const util::MultiSetInstance inst = util::random_multi_sets(
      wrng, universe, servers, records_per_server, fully_replicated);

  sim::Network network(servers);
  sim::SharedRandomness shared(5);
  const multiparty::MultipartyResult result =
      multiparty::coordinator_intersection(network, shared, universe,
                                           inst.sets);

  const bool exact = result.intersection == inst.expected_intersection;
  std::printf("%zu servers x %zu records, %zu fully replicated\n", servers,
              records_per_server, fully_replicated);
  std::printf("protocol found %zu common records: %s\n",
              result.intersection.size(), exact ? "exact" : "WRONG");
  std::printf("\nnetwork costs:\n");
  std::printf("  total bits            : %llu\n",
              static_cast<unsigned long long>(network.total_bits()));
  std::printf("  avg bits per server   : %.1f (%.2f per record)\n",
              network.average_player_bits(),
              network.average_player_bits() /
                  static_cast<double>(records_per_server));
  std::printf("  busiest server        : %llu bits (the coordinator)\n",
              static_cast<unsigned long long>(network.max_player_bits()));
  std::printf("  rounds                : %llu across %zu recursion levels\n",
              static_cast<unsigned long long>(network.rounds()),
              result.levels);
  std::printf("  two-party re-runs     : %llu (certificate failures)\n",
              static_cast<unsigned long long>(result.total_repetitions -
                                              (servers - 1)));
  return exact ? 0 : 1;
}
