// Example: exact similarity statistics between two document shingle sets.
//
// Search / text-analytics scenario from the paper's applications section:
// two servers each hold the w-shingle fingerprints of a document and want
// the EXACT Jaccard similarity (plus Hamming distance, distinct count and
// rarity), not a min-hash estimate — at O(k) communication.
//
//   ./build/examples/example_jaccard_similarity
#include <cstdio>

#include "apps/similarity.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main() {
  using namespace setint;

  // Simulated shingle fingerprints: 64-bit hashes, 8192 shingles per
  // document, with near-duplicate documents sharing ~85% of shingles.
  const std::uint64_t universe = std::uint64_t{1} << 62;
  const std::size_t shingles = 8192;
  util::Rng wrng(7);
  const util::SetPair docs = util::random_set_pair(
      wrng, universe, shingles,
      static_cast<std::size_t>(0.85 * static_cast<double>(shingles)));

  sim::Channel channel;
  sim::SharedRandomness shared(3);
  const apps::SimilarityReport rep = apps::similarity_report(
      channel, shared, /*nonce=*/0, universe, docs.s, docs.t);

  std::printf("document A: %llu shingles, document B: %llu shingles\n",
              static_cast<unsigned long long>(rep.size_s),
              static_cast<unsigned long long>(rep.size_t_side));
  std::printf("|A cap B| = %llu   |A cup B| = %llu\n",
              static_cast<unsigned long long>(rep.intersection_size),
              static_cast<unsigned long long>(rep.union_size));
  std::printf("exact Jaccard similarity : %.6f\n", rep.jaccard);
  std::printf("sparse Hamming distance  : %llu\n",
              static_cast<unsigned long long>(rep.symmetric_difference));
  std::printf("distinct shingles        : %llu\n",
              static_cast<unsigned long long>(rep.union_size));
  std::printf("1-rarity / 2-rarity      : %.6f / %.6f\n", rep.rarity1,
              rep.rarity2);
  std::printf("\ncommunication: %llu bits (%.2f per shingle) in %llu rounds\n",
              static_cast<unsigned long long>(channel.cost().bits_total),
              static_cast<double>(channel.cost().bits_total) /
                  static_cast<double>(shingles),
              static_cast<unsigned long long>(channel.cost().rounds));
  std::printf(
      "versus shipping the raw shingle sets: ~%zu bits (62-bit universe)\n",
      shingles * 50);

  const bool exact = rep.intersection == docs.expected_intersection;
  std::printf("result check: %s\n", exact ? "exact" : "WRONG");
  return exact ? 0 : 1;
}
