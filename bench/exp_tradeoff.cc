// E1 — Theorem 1.1 / 3.6: the communication/round tradeoff.
//
// Claim: for every r there is a 6r-round protocol with expected
// communication O(k log^(r) k); at r = log* k this is O(k).
// This binary sweeps k and r, reporting measured bits per element next to
// the predicted log^(r) k growth factor. Expected shape: at fixed r,
// bits/k tracks log^(r) k within a constant; the r = log* k column is flat
// in k.
//
// With --json the record also carries a traced phase breakdown (E1d): one
// run per r with an obs::Tracer installed, whose per-level bit totals sum
// exactly to CostStats::bits_total — the accounting identity behind
// Theorem 3.6's per-stage cost telescoping.
#include <cstdio>

#include "bench_util.h"
#include "core/verification_tree.h"
#include "obs/envelope.h"
#include "obs/tracer.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

sim::CostStats run_tree(std::uint64_t seed, std::uint64_t universe,
                        const util::SetPair& p, int r,
                        obs::Tracer* tracer = nullptr) {
  core::VerificationTreeParams params;
  params.rounds_r = r;
  sim::SharedRandomness shared(seed);
  sim::Channel ch;
  ch.set_tracer(tracer);
  core::verification_tree_intersection(ch, shared, seed, universe, p.s, p.t,
                                       params);
  return ch.cost();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("tradeoff", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 40;
  const int trials = rep.smoke() ? 1 : 3;
  const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
      rep.options(), {256, 1024, 4096, 16384, 65536}, {256, 1024});

  // Every measured (k, r) point below also feeds the theory-conformance
  // auditor: measured bits must stay within c_bound * k * (log^(r) k + r)
  // and rounds within 6r, or the binary exits non-zero (E1e).
  obs::EnvelopeAuditor auditor;
  auditor.expect("verification_tree");

  {
    auto& table = rep.table(
        "E1a: bits per element vs r  (Theorem 1.1: O(k log^(r) k))",
        {"k", "r=1", "r=2", "r=3", "r=4", "r=5", "r=6", "r=log*k"});
    for (std::size_t k : ks) {
      util::Rng wrng(rep.seed_for(k));
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (int r = 1; r <= 6; ++r) {
        const sim::CostStats cost = bench::average_cost(trials, [&](int t) {
          return run_tree(
              rep.seed_for(static_cast<std::uint64_t>(t) * 77 + k,
                           static_cast<std::uint64_t>(r)),
              universe, p, r);
        });
        row.push_back(bench::fmt_double(
            static_cast<double>(cost.bits_total) / static_cast<double>(k)));
        auditor.add("verification_tree",
                    {k, r, cost.bits_total, cost.rounds, 1});
      }
      const int rstar = util::log_star(static_cast<double>(k));
      const sim::CostStats cost = bench::average_cost(trials, [&](int t) {
        return run_tree(rep.seed_for(static_cast<std::uint64_t>(t) * 13 + k),
                        universe, p, rstar);
      });
      auditor.add("verification_tree",
                  {k, rstar, cost.bits_total, cost.rounds, 1});
      row.push_back(bench::fmt_double(static_cast<double>(cost.bits_total) /
                                      static_cast<double>(k)) +
                    " (r=" + std::to_string(rstar) + ")");
      table.add_row(std::move(row));
    }
    table.print();
  }

  {
    auto& table = rep.table(
        "E1b: predicted growth factor log^(r) k  (for comparison)",
        {"k", "log^(1)k", "log^(2)k", "log^(3)k", "log^(4)k", "log^(5)k",
         "log^(6)k"});
    for (std::size_t k : ks) {
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (int r = 1; r <= 6; ++r) {
        row.push_back(bench::fmt_double(
            util::iterated_log(r, static_cast<double>(k))));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }

  {
    auto& table = rep.table("E1c: flatness at r = log* k  (the O(k)-bits headline)",
                            {"k", "bits total", "bits/k", "rounds"});
    const std::vector<std::size_t> flat_ks = bench::sizes<std::size_t>(
        rep.options(), {256, 1024, 4096, 16384, 65536, 262144}, {256, 1024});
    for (std::size_t k : flat_ks) {
      util::Rng wrng(rep.seed_for(k * 3));
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      const int rstar = util::log_star(static_cast<double>(k));
      const sim::CostStats cost = bench::average_cost(trials, [&](int t) {
        return run_tree(rep.seed_for(static_cast<std::uint64_t>(t) + k),
                        universe, p, rstar);
      });
      auditor.add("verification_tree",
                  {k, rstar, cost.bits_total, cost.rounds, 1});
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(cost.bits_total),
                     bench::fmt_double(static_cast<double>(cost.bits_total) /
                                       static_cast<double>(k)),
                     bench::fmt_u64(cost.rounds)});
    }
    table.print();
    std::printf(
        "\nShape check: the bits/k column should stay ~flat while k grows\n"
        "1024x, reproducing the O(k) total of Theorem 1.1 at r = log* k.\n");
  }

  // E1d: traced phase breakdown — one run per r with a tracer installed.
  // The per-phase bit attribution must cover the run exactly:
  // sum(level totals) + untraced remainder == bits_total, and the tracer's
  // root total equals the channel's meter bit for bit.
  bool attribution_exact = true;
  {
    auto& table = rep.table(
        "E1d: phase-attributed bits at k=4096 (tracer, per level)",
        {"r", "bits total", "levels bits", "phases covered", "exact"});
    obs::Json breakdowns = obs::Json::array();
    const std::size_t k = rep.smoke() ? 512 : 4096;
    util::Rng wrng(rep.seed_for(k));
    const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
    for (int r = 2; r <= 4; ++r) {
      obs::Tracer tracer;
      const sim::CostStats cost =
          run_tree(rep.seed_for(k, static_cast<std::uint64_t>(r)), universe, p,
                   r, &tracer);
      const obs::PhaseNode* tree = tracer.root().child("verification_tree");
      std::uint64_t level_bits = 0;
      std::size_t levels = 0;
      if (tree != nullptr) {
        for (int stage = 0; stage < r; ++stage) {
          const obs::PhaseNode* level =
              tree->child("level=" + std::to_string(stage));
          if (level == nullptr) continue;
          level_bits += level->total_bits();
          levels += 1;
        }
      }
      const bool exact = tracer.total_bits() == cost.bits_total &&
                         tree != nullptr &&
                         tree->total_bits() == cost.bits_total &&
                         level_bits == cost.bits_total;
      attribution_exact &= exact;
      table.add_row({bench::fmt_u64(static_cast<std::uint64_t>(r)),
                     bench::fmt_u64(cost.bits_total),
                     bench::fmt_u64(level_bits), bench::fmt_u64(levels),
                     exact ? "YES" : "NO"});
      rep.merge_metrics(tracer.metrics());

      obs::Json entry = obs::Json::object();
      entry["r"] = r;
      entry["k"] = k;
      entry["bits_total"] = cost.bits_total;
      entry["phases"] = tracer.BreakdownJson();
      breakdowns.push_back(std::move(entry));
    }
    table.print();
    rep.note("phase_breakdowns", std::move(breakdowns));
    std::printf(
        "\nAttribution identity (sum of per-level bits == bits_total): %s\n",
        attribution_exact ? "EXACT" : "VIOLATED");
  }

  // E1e: theory-conformance envelope over every sample measured above.
  bool envelope_ok = true;
  {
    auto& table = rep.table(
        "E1e: envelope audit  (bits <= c * k * (log^(r) k + r), rounds <= 6r)",
        {"protocol", "samples", "fitted c", "c bound", "slack",
         "rounds violations", "within"});
    for (const obs::EnvelopeAudit& a : auditor.audit()) {
      table.add_row({a.protocol, bench::fmt_u64(a.samples),
                     bench::fmt_double(a.fitted_c), bench::fmt_double(a.c_bound),
                     bench::fmt_double(a.slack),
                     bench::fmt_u64(a.rounds_violations),
                     a.within() ? "YES" : "NO"});
    }
    table.print();
    envelope_ok = auditor.all_within();
    rep.note("envelope_audit", auditor.ToJson());
    std::printf("\nEnvelope audit: %s\n",
                envelope_ok ? "ALL WITHIN" : "VIOLATED");
  }

  return rep.finish(attribution_exact && envelope_ok ? 0 : 1);
}
