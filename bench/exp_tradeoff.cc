// E1 — Theorem 1.1 / 3.6: the communication/round tradeoff.
//
// Claim: for every r there is a 6r-round protocol with expected
// communication O(k log^(r) k); at r = log* k this is O(k).
// This binary sweeps k and r, reporting measured bits per element next to
// the predicted log^(r) k growth factor. Expected shape: at fixed r,
// bits/k tracks log^(r) k within a constant; the r = log* k column is flat
// in k.
#include <cstdio>

#include "bench_util.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

sim::CostStats run_tree(std::uint64_t seed, std::uint64_t universe,
                        const util::SetPair& p, int r) {
  core::VerificationTreeParams params;
  params.rounds_r = r;
  sim::SharedRandomness shared(seed);
  sim::Channel ch;
  core::verification_tree_intersection(ch, shared, seed, universe, p.s, p.t,
                                       params);
  return ch.cost();
}

}  // namespace

int main() {
  using namespace setint;
  const std::uint64_t universe = std::uint64_t{1} << 40;
  const int trials = 3;

  bench::print_header(
      "E1a: bits per element vs r  (Theorem 1.1: O(k log^(r) k))");
  {
    bench::Table table({"k", "r=1", "r=2", "r=3", "r=4", "r=5", "r=6",
                        "r=log*k"});
    for (std::size_t k : {256u, 1024u, 4096u, 16384u, 65536u}) {
      util::Rng wrng(k);
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (int r = 1; r <= 6; ++r) {
        const sim::CostStats cost = bench::average_cost(trials, [&](int t) {
          return run_tree(static_cast<std::uint64_t>(t) * 77 + k + r,
                          universe, p, r);
        });
        row.push_back(bench::fmt_double(
            static_cast<double>(cost.bits_total) / static_cast<double>(k)));
      }
      const int rstar = util::log_star(static_cast<double>(k));
      const sim::CostStats cost = bench::average_cost(trials, [&](int t) {
        return run_tree(static_cast<std::uint64_t>(t) * 13 + k, universe, p,
                        rstar);
      });
      row.push_back(bench::fmt_double(static_cast<double>(cost.bits_total) /
                                      static_cast<double>(k)) +
                    " (r=" + std::to_string(rstar) + ")");
      table.add_row(std::move(row));
    }
    table.print();
  }

  bench::print_header(
      "E1b: predicted growth factor log^(r) k  (for comparison)");
  {
    bench::Table table({"k", "log^(1)k", "log^(2)k", "log^(3)k", "log^(4)k",
                        "log^(5)k", "log^(6)k"});
    for (std::size_t k : {256u, 1024u, 4096u, 16384u, 65536u}) {
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (int r = 1; r <= 6; ++r) {
        row.push_back(bench::fmt_double(
            util::iterated_log(r, static_cast<double>(k))));
      }
      table.add_row(std::move(row));
    }
    table.print();
  }

  bench::print_header(
      "E1c: flatness at r = log* k  (the O(k)-bits headline)");
  {
    bench::Table table({"k", "bits total", "bits/k", "rounds"});
    for (std::size_t k : {256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
      util::Rng wrng(k * 3);
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      const int rstar = util::log_star(static_cast<double>(k));
      const sim::CostStats cost = bench::average_cost(trials, [&](int t) {
        return run_tree(static_cast<std::uint64_t>(t) + k, universe, p, rstar);
      });
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(cost.bits_total),
                     bench::fmt_double(static_cast<double>(cost.bits_total) /
                                       static_cast<double>(k)),
                     bench::fmt_u64(cost.rounds)});
    }
    table.print();
    std::printf(
        "\nShape check: the bits/k column should stay ~flat while k grows\n"
        "1024x, reproducing the O(k) total of Theorem 1.1 at r = log* k.\n");
  }
  return 0;
}
