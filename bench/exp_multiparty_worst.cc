// E6 — Corollary 4.2 (tournament protocol): bounded worst-case per-player
// communication, at the price of more rounds.
//
// Expected shape: tournament max-bits/player is far below the coordinator
// protocol's (which concentrates ~2k conversations on one player), while
// its round count is higher by about the bracket depth.
#include <cstdio>

#include "bench_util.h"
#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("multiparty_worst", argc, argv);
  const std::size_t k = 32;
  const std::vector<std::size_t> ms = bench::sizes<std::size_t>(
      rep.options(), {4, 16, 64, 256}, {4, 16});

  auto& table = rep.table(
      "E6: worst-case player load, coordinator (Cor 4.1) vs tournament "
      "(Cor 4.2), k = 32",
      {"m", "coord max bits", "tour max bits", "ratio", "coord rounds",
       "tour rounds", "both exact"});
  for (std::size_t m : ms) {
    util::Rng wrng(rep.seed_for(m * 13));
    const util::MultiSetInstance inst =
        util::random_multi_sets(wrng, std::uint64_t{1} << 26, m, k, k / 2);
    sim::SharedRandomness shared(rep.seed_for(m));

    sim::Network coord_net(m);
    const auto coord = multiparty::coordinator_intersection(
        coord_net, shared, std::uint64_t{1} << 26, inst.sets);
    sim::Network tour_net(m);
    const auto tour = multiparty::tournament_intersection(
        tour_net, shared, std::uint64_t{1} << 26, inst.sets);

    const bool exact = coord.intersection == inst.expected_intersection &&
                       tour.intersection == inst.expected_intersection;
    const double ratio =
        static_cast<double>(coord_net.max_player_bits()) /
        static_cast<double>(std::max<std::uint64_t>(1,
                                                    tour_net.max_player_bits()));
    table.add_row({bench::fmt_u64(m),
                   bench::fmt_u64(coord_net.max_player_bits()),
                   bench::fmt_u64(tour_net.max_player_bits()),
                   bench::fmt_double(ratio),
                   bench::fmt_u64(coord_net.rounds()),
                   bench::fmt_u64(tour_net.rounds()),
                   exact ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nShape check: for m >= 2k the ratio column shows the tournament\n"
      "spreading the coordinator's load; tournament rounds grow by the\n"
      "bracket depth (~log2 of the group size) — the Corollary 4.2 trade.\n");
  return rep.finish();
}
