// E-CPU: the hot-path compute-engine lane — CPU time, not communication.
//
// Every other experiment measures bits and rounds; this one measures the
// cost of *producing* them: ns/element for the hashing substrate (batched
// Barrett/Montgomery evaluation vs the plain-division formula) and
// sessions/sec for the core protocols end-to-end.
//
// Safety gate: the engine must change how bits are computed, never which
// bits are sent. Section E-CPU.0 re-runs the golden reference instance
// (fixed seeds, independent of --seed) and compares transcript digests and
// bit/round counts against the constants pinned in tests/golden_test.cc;
// any divergence makes the binary exit non-zero. Microbench sections
// additionally pin checksum equality between the engine and its
// plain-division baseline.
//
// Timing cells live in columns whose names contain "wall_ms" so the bench
// determinism filter strips them (the bench_util.h contract); everything
// else — counts, checksums, digests — is deterministic and compared.
//
// SIMD lane (E-CPU.5..7): the adaptive intersection oracle and bitmap
// kernels engine-vs-baseline (checksum-gated, timing informational), plus
// a scalar-vs-SIMD differential gate that forces every kernel tier
// against the scalar reference. The record's environment.cpu block says
// which tier the timing columns were measured on (schema v3); records
// from different tiers are timing-incomparable (tools/bench_compare
// enforces this).
#include <algorithm>
#include <bit>
#include <ctime>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/bucket_eq.h"
#include "core/one_round_hash.h"
#include "core/verification_tree.h"
#include "obs/envelope.h"
#include "obs/recorder.h"
#include "obs/tracer.h"
#include "hashing/fks.h"
#include "hashing/mask_hash.h"
#include "hashing/modmath.h"
#include "hashing/pairwise.h"
#include "hashing/primes.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint {
namespace {

// Process CPU time: immune to wall-clock noise from other containers on
// the host, which is what a 1-core CI box sees.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::string fmt_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

// ---------------------------------------------------------------------------
// E-CPU.0: bit-identity gate against the golden reference instance.
// ---------------------------------------------------------------------------

struct GoldenPin {
  const char* protocol;
  std::uint64_t bits;
  std::uint64_t rounds;  // 0 = not pinned
  std::uint64_t digest;
};

// Constants mirrored from tests/golden_test.cc — update both together,
// and only for a deliberate protocol change.
constexpr GoldenPin kPins[] = {
    {"verification_tree", 17718, 16, 0x076458b27132f643ull},
    {"one_round_hash", 27686, 0, 0x9e818e562ca190cfull},
    {"bucket_eq", 10201, 0, 0xc18884eae55cd105ull},
};

bool run_identity_gate(bench::Reporter& rep, obs::EnvelopeAuditor& auditor) {
  auto& t = rep.table("E-CPU.0: transcript bit-identity gate (golden reference)",
                      {"protocol", "bits", "rounds", "digest", "ok"});
  bool all_ok = true;
  for (const GoldenPin& pin : kPins) {
    // The reference instance is pinned independently of --seed.
    util::Rng wrng(12345);
    const util::SetPair pair = util::random_set_pair(wrng, 1u << 24, 512, 256);
    sim::SharedRandomness shared{777};
    sim::Channel ch(/*record_transcript=*/true);
    const std::string name = pin.protocol;
    if (name == "verification_tree") {
      core::verification_tree_intersection(ch, shared, 42, 1u << 24, pair.s,
                                           pair.t, {});
    } else if (name == "one_round_hash") {
      core::one_round_hash(ch, shared, 42, 1u << 24, pair.s, pair.t);
    } else {
      core::bucket_eq_intersection(ch, shared, 42, 1u << 24, pair.s, pair.t);
    }
    const std::uint64_t bits = ch.cost().bits_total;
    const std::uint64_t rounds = ch.cost().rounds;
    const std::uint64_t digest = ch.transcript()->digest();
    const bool ok = bits == pin.bits && digest == pin.digest &&
                    (pin.rounds == 0 || rounds == pin.rounds);
    all_ok = all_ok && ok;
    auditor.add(name, {512, 0, bits, rounds, 1});
    t.add_row({name, bench::fmt_u64(bits), bench::fmt_u64(rounds),
               fmt_hex(digest), ok ? "yes" : "NO"});
  }
  t.print();
  return all_ok;
}

// ---------------------------------------------------------------------------
// E-CPU.1: substrate microbenchmarks — engine vs plain-division baseline.
// ---------------------------------------------------------------------------

// Pre-change reference evaluation: the textbook formula with two hardware
// divisions per element, exactly what PairwiseHash::operator() computed
// before the Barrett/Montgomery engine.
std::uint64_t pairwise_reference(const hashing::PairwiseHash& h,
                                 std::uint64_t x) {
  const std::uint64_t p = h.prime();
  const std::uint64_t ax = hashing::mulmod(h.multiplier(), x % p, p);
  return ((ax + h.offset()) % p) % h.range();
}

// Pre-change mask_hash: the generic per-word loop without the single-word
// fast path (copied shape, same Rng draw order — outputs must match).
std::uint64_t mask_hash_reference(const util::BitBuffer& data, unsigned bits,
                                  util::Rng stream) {
  const auto& words = data.words();
  const std::size_t nbits = data.size_bits();
  const std::size_t full = nbits / 64;
  const unsigned tail = static_cast<unsigned>(nbits % 64);
  const std::uint64_t tail_mask =
      tail == 0 ? 0
                : ((tail == 64) ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << tail) - 1));
  std::uint64_t out = 0;
  for (unsigned b = 0; b < bits; ++b) {
    unsigned parity = std::popcount(stream.next() & nbits) & 1u;
    for (std::size_t w = 0; w < full; ++w) {
      parity ^= std::popcount(stream.next() & words[w]) & 1u;
    }
    if (tail != 0) {
      parity ^= std::popcount(stream.next() & words[full] & tail_mask) & 1u;
    }
    out |= static_cast<std::uint64_t>(parity) << b;
  }
  return out;
}

struct MicroResult {
  std::uint64_t checksum_baseline = 0;
  std::uint64_t checksum_engine = 0;
  double baseline_ms = 0;
  double engine_ms = 0;
};

void add_micro_row(bench::Table& t, const std::string& op, std::size_t n,
                   int reps, const MicroResult& r, bool& all_ok) {
  const bool match = r.checksum_baseline == r.checksum_engine;
  all_ok = all_ok && match;
  const double total = static_cast<double>(n) * reps;
  t.add_row({op, bench::fmt_u64(n), bench::fmt_u64(static_cast<std::uint64_t>(reps)),
             fmt_hex(r.checksum_engine), match ? "yes" : "NO",
             bench::fmt_double(r.baseline_ms * 1e6 / total, 2),
             bench::fmt_double(r.engine_ms * 1e6 / total, 2),
             bench::fmt_double(r.baseline_ms / std::max(1e-12, r.engine_ms), 2)});
}

bool run_substrate_micro(bench::Reporter& rep) {
  const std::size_t n = rep.smoke() ? (1u << 13) : (1u << 17);
  const int reps = rep.smoke() ? 3 : 10;
  bool all_ok = true;

  auto& t = rep.table(
      "E-CPU.1: hashing substrate, batched engine vs division baseline",
      {"op", "n", "reps", "checksum", "identical",
       "baseline ns_per_elem (wall_ms)", "engine ns_per_elem (wall_ms)",
       "speedup (wall_ms ratio)"});

  util::Rng rng(rep.seed_for(0xC0));
  std::vector<std::uint64_t> xs(n);
  for (auto& x : xs) x = rng.below(std::uint64_t{1} << 24);
  std::vector<std::uint64_t> out(n);

  {  // Pairwise Carter-Wegman evaluation.
    const auto h =
        hashing::PairwiseHash::sample(rng, std::uint64_t{1} << 24, 512 * 512);
    MicroResult r;
    double t0 = cpu_seconds();
    for (int rep_i = 0; rep_i < reps; ++rep_i) {
      std::uint64_t acc = 0;
      for (std::uint64_t x : xs) acc += pairwise_reference(h, x);
      r.checksum_baseline = acc;
    }
    r.baseline_ms = (cpu_seconds() - t0) * 1e3;
    t0 = cpu_seconds();
    for (int rep_i = 0; rep_i < reps; ++rep_i) {
      h.hash_many(xs, out);
      std::uint64_t acc = 0;
      for (std::uint64_t v : out) acc += v;
      r.checksum_engine = acc;
    }
    r.engine_ms = (cpu_seconds() - t0) * 1e3;
    add_micro_row(t, "pairwise_hash", n, reps, r, all_ok);
  }

  {  // FKS mod-prime compression.
    const auto fks =
        hashing::FksCompressor::sample(rng, std::uint64_t{1} << 24, 1024);
    const std::uint64_t q = fks.range();
    MicroResult r;
    double t0 = cpu_seconds();
    for (int rep_i = 0; rep_i < reps; ++rep_i) {
      std::uint64_t acc = 0;
      for (std::uint64_t x : xs) acc += x % q;
      r.checksum_baseline = acc;
    }
    r.baseline_ms = (cpu_seconds() - t0) * 1e3;
    t0 = cpu_seconds();
    for (int rep_i = 0; rep_i < reps; ++rep_i) {
      fks.hash_many(xs, out);
      std::uint64_t acc = 0;
      for (std::uint64_t v : out) acc += v;
      r.checksum_engine = acc;
    }
    r.engine_ms = (cpu_seconds() - t0) * 1e3;
    add_micro_row(t, "fks_mod_prime", n, reps, r, all_ok);
  }

  {  // GF(2) mask hashing of single-word payloads (the bucket-EQ case).
    const std::size_t hashes = rep.smoke() ? (1u << 10) : (1u << 14);
    util::BitBuffer payload;
    payload.append_bits(rng.next() & ((std::uint64_t{1} << 24) - 1), 24);
    const util::Rng stream(rep.seed_for(0xAA));
    MicroResult r;
    double t0 = cpu_seconds();
    for (int rep_i = 0; rep_i < reps; ++rep_i) {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < hashes; ++i) {
        acc += mask_hash_reference(payload, 16, stream.substream(i));
      }
      r.checksum_baseline = acc;
    }
    r.baseline_ms = (cpu_seconds() - t0) * 1e3;
    t0 = cpu_seconds();
    for (int rep_i = 0; rep_i < reps; ++rep_i) {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < hashes; ++i) {
        acc += hashing::mask_hash(payload, 16, stream.substream(i));
      }
      r.checksum_engine = acc;
    }
    r.engine_ms = (cpu_seconds() - t0) * 1e3;
    add_micro_row(t, "mask_hash_16b", hashes, reps, r, all_ok);
  }

  t.print();

  // Prime sampling: cold (empty memo) vs warm (same candidates again).
  auto& pt = rep.table(
      "E-CPU.1b: next-prime search, cold vs warm memo table",
      {"candidates", "checksum", "identical", "cache_entries",
       "cold us_per_prime (wall_ms)", "warm us_per_prime (wall_ms)",
       "speedup (wall_ms ratio)"});
  {
    const std::size_t m = rep.smoke() ? 64 : 512;
    util::Rng prng(rep.seed_for(0xF1));
    std::vector<std::uint64_t> cands(m);
    for (auto& c : cands) c = (std::uint64_t{1} << 20) + prng.below(1u << 24);
    hashing::prime_cache_clear();
    std::uint64_t cold_sum = 0;
    double t0 = cpu_seconds();
    for (std::uint64_t c : cands) cold_sum += hashing::next_prime_at_least(c);
    const double cold_ms = (cpu_seconds() - t0) * 1e3;
    std::uint64_t warm_sum = 0;
    t0 = cpu_seconds();
    for (std::uint64_t c : cands) warm_sum += hashing::next_prime_at_least(c);
    const double warm_ms = (cpu_seconds() - t0) * 1e3;
    const bool match = cold_sum == warm_sum;
    all_ok = all_ok && match;
    const auto stats = hashing::prime_cache_stats();
    const double md = static_cast<double>(m);
    pt.add_row({bench::fmt_u64(m), fmt_hex(warm_sum), match ? "yes" : "NO",
                bench::fmt_u64(stats.entries),
                bench::fmt_double(cold_ms * 1e3 / md, 2),
                bench::fmt_double(warm_ms * 1e3 / md, 2),
                bench::fmt_double(cold_ms / std::max(1e-12, warm_ms), 1)});
  }
  pt.print();
  return all_ok;
}

// ---------------------------------------------------------------------------
// E-CPU.2: end-to-end protocol throughput (sessions/sec, ns/element).
// ---------------------------------------------------------------------------

void run_protocol_throughput(bench::Reporter& rep,
                             obs::EnvelopeAuditor& auditor) {
  auto& t = rep.table(
      "E-CPU.2: protocol session throughput (universe 2^24, |S|=|T|=k)",
      {"protocol", "k", "trials", "bits_total", "rounds",
       "sessions_per_sec (wall_ms)", "us_per_session (wall_ms)",
       "ns_per_elem (wall_ms)"});
  const std::size_t k = rep.smoke() ? 128 : 512;
  const int trials = rep.smoke() ? 20 : 200;
  const std::uint64_t universe = std::uint64_t{1} << 24;

  struct Proto {
    const char* name;
    int id;
  };
  const Proto protos[] = {
      {"verification_tree[r=auto]", 0}, {"one_round_hash", 1}, {"bucket_eq", 2}};
  for (const Proto& proto : protos) {
    util::Rng wrng(rep.seed_for(0x7E, proto.id));
    const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 2);
    std::uint64_t bits = 0, rounds = 0;
    const double t0 = cpu_seconds();
    for (int trial = 0; trial < trials; ++trial) {
      sim::Channel ch;
      sim::SharedRandomness shared{rep.seed_for(0x5E, proto.id)};
      switch (proto.id) {
        case 0:
          core::verification_tree_intersection(ch, shared, trial, universe,
                                               pair.s, pair.t, {});
          break;
        case 1:
          core::one_round_hash(ch, shared, trial, universe, pair.s, pair.t);
          break;
        default:
          core::bucket_eq_intersection(ch, shared, trial, universe, pair.s,
                                       pair.t);
          break;
      }
      if (trial == 0) {
        bits = ch.cost().bits_total;
        rounds = ch.cost().rounds;
        static constexpr const char* kProtocolNames[] = {
            "verification_tree", "one_round_hash", "bucket_eq"};
        auditor.add(kProtocolNames[proto.id], {k, 0, bits, rounds, 1});
      }
    }
    const double secs = cpu_seconds() - t0;
    const double per_session = secs / trials;
    t.add_row({proto.name, bench::fmt_u64(k),
               bench::fmt_u64(static_cast<std::uint64_t>(trials)),
               bench::fmt_u64(bits), bench::fmt_u64(rounds),
               bench::fmt_double(1.0 / std::max(1e-12, per_session), 1),
               bench::fmt_double(per_session * 1e6, 1),
               bench::fmt_double(per_session * 1e9 /
                                     static_cast<double>(2 * k), 1)});
  }
  t.print();
}

// ---------------------------------------------------------------------------
// E-CPU.3: telemetry overhead — the recorder/tracer hooks must not tax the
// un-instrumented hot path.
// ---------------------------------------------------------------------------

// Runs the same verification-tree workload with telemetry off, with a
// flight recorder attached, and with tracer + recorder; reports median-of-3
// CPU time per config. The bits checksum must be identical across configs
// (telemetry observes, never alters) — that part is deterministic and
// always gates. The timing ratio only gates when --gate-overhead=<pct> is
// given: clocks stay out of default CI verdicts, per the repo's
// determinism policy.
bool run_telemetry_overhead(bench::Reporter& rep) {
  auto& t = rep.table(
      "E-CPU.3: telemetry overhead (verification_tree, median of 3 passes)",
      {"config", "trials", "bits_checksum", "identical",
       "us_per_session (wall_ms)", "overhead_pct (wall_ms)"});
  const std::size_t k = rep.smoke() ? 128 : 512;
  const int trials = rep.smoke() ? 10 : 50;
  const std::uint64_t universe = std::uint64_t{1} << 24;
  util::Rng wrng(rep.seed_for(0x0B5));
  const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 2);

  struct Config {
    const char* name;
    bool tracer;
    bool recorder;
  };
  constexpr Config kConfigs[] = {
      {"off", false, false},
      {"recorder", false, true},
      {"tracer+recorder", true, true},
  };
  double off_us = 0.0;
  double recorder_overhead_pct = 0.0;
  std::uint64_t off_checksum = 0;
  bool identical = true;
  for (const Config& cfg : kConfigs) {
    std::uint64_t checksum = 0;
    double times[3];
    for (int pass = 0; pass < 3; ++pass) {
      checksum = 0;
      const double t0 = cpu_seconds();
      for (int trial = 0; trial < trials; ++trial) {
        std::optional<obs::Tracer> tracer;
        std::optional<obs::FlightRecorder> recorder;
        sim::Channel ch;
        if (cfg.tracer) {
          tracer.emplace();
          ch.set_tracer(&*tracer);
        }
        if (cfg.recorder) {
          recorder.emplace();
          ch.set_recorder(&*recorder);
        }
        sim::SharedRandomness shared{rep.seed_for(0x0B6)};
        core::verification_tree_intersection(ch, shared, trial, universe,
                                             pair.s, pair.t, {});
        checksum += ch.cost().bits_total;
      }
      times[pass] = cpu_seconds() - t0;
    }
    std::sort(times, times + 3);
    const double us_per_session = times[1] * 1e6 / trials;
    if (&cfg == &kConfigs[0]) {
      off_us = us_per_session;
      off_checksum = checksum;
    }
    const bool match = checksum == off_checksum;
    identical = identical && match;
    const double overhead_pct =
        off_us > 0.0 ? (us_per_session / off_us - 1.0) * 100.0 : 0.0;
    if (cfg.recorder && !cfg.tracer) recorder_overhead_pct = overhead_pct;
    t.add_row({cfg.name, bench::fmt_u64(static_cast<std::uint64_t>(trials)),
               bench::fmt_u64(checksum), match ? "yes" : "NO",
               bench::fmt_double(us_per_session, 1),
               bench::fmt_double(overhead_pct, 1)});
  }
  t.print();

  bool ok = identical;
  if (!identical) {
    std::fprintf(stderr,
                 "[exp_cpu] FAIL: telemetry changed the bits a run sends\n");
  }
  const double gate = rep.options().gate_overhead_pct;
  if (gate >= 0.0) {
    const bool within = recorder_overhead_pct <= gate;
    std::printf("\nOverhead gate: recorder path %+.1f%% vs off (cap %.1f%%): %s\n",
                recorder_overhead_pct, gate, within ? "PASS" : "FAIL");
    ok = ok && within;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// E-CPU.5: adaptive intersection oracle — engine vs std::set_intersection.
// ---------------------------------------------------------------------------

// Order-sensitive checksum: catches wrong elements, wrong counts, and
// wrong ordering alike.
std::uint64_t intersect_checksum(std::span<const std::uint64_t> out,
                                 std::size_t n) {
  std::uint64_t acc = static_cast<std::uint64_t>(n) * 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    acc = (acc ^ out[i]) * 0x2545f4914f6cdd1dull;
  }
  return acc;
}

bool run_intersect_oracle(bench::Reporter& rep) {
  auto& t = rep.table(
      "E-CPU.5: adaptive intersection oracle vs std::set_intersection",
      {"shape", "na", "nb", "algo", "tier", "out", "checksum", "identical",
       "baseline ns_per_elem (wall_ms)", "engine ns_per_elem (wall_ms)",
       "speedup (wall_ms ratio)"});
  bool all_ok = true;

  // Shapes straddle the heuristic's crossovers: balanced -> kBlock,
  // ratio >= kGallopRatio -> kGallop, ratio >= kBlockGallopRatio ->
  // kBlockGallop, and a tiny-small case that stays on scalar merge.
  struct Shape {
    const char* name;
    std::size_t na;
    std::size_t nb;
  };
  const unsigned shrink = rep.smoke() ? 3 : 0;  // smoke: sizes / 8
  const Shape shapes[] = {
      {"balanced_4k", 4096u >> shrink, 4096u >> shrink},
      {"balanced_64k", 65536u >> shrink, 65536u >> shrink},
      {"skewed_64x", 1024u >> shrink, 65536u >> shrink},
      {"skewed_2048x", 64, 131072u >> shrink},
      {"tiny_small", 8, 64},
  };
  util::Rng rng(rep.seed_for(0xC5));
  for (const Shape& sh : shapes) {
    // A universe ~4x the large side gives a dense instance with a real
    // intersection instead of two nearly-disjoint sparse sets.
    const std::uint64_t universe = static_cast<std::uint64_t>(sh.nb) * 4;
    const util::Set a = util::random_set(rng, universe, sh.na);
    const util::Set b = util::random_set(rng, universe, sh.nb);
    std::vector<std::uint64_t> out(std::min(sh.na, sh.nb) +
                                   simd::kIntersectPadding);
    const int reps = static_cast<int>(
        std::max<std::size_t>(1, (rep.smoke() ? (1u << 16) : (1u << 22)) /
                                     (sh.na + sh.nb)));

    std::uint64_t baseline_sum = 0;
    double t0 = cpu_seconds();
    for (int i = 0; i < reps; ++i) {
      auto end = std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                       out.begin());
      baseline_sum = intersect_checksum(
          out, static_cast<std::size_t>(end - out.begin()));
    }
    const double baseline_ms = (cpu_seconds() - t0) * 1e3;

    std::uint64_t engine_sum = 0;
    std::size_t n_out = 0;
    t0 = cpu_seconds();
    for (int i = 0; i < reps; ++i) {
      n_out = simd::intersect_sorted(a, b, out);
      engine_sum = intersect_checksum(out, n_out);
    }
    const double engine_ms = (cpu_seconds() - t0) * 1e3;

    const bool match = baseline_sum == engine_sum;
    all_ok = all_ok && match;
    const simd::IntersectAlgo algo =
        simd::plan_intersect(sh.na, sh.nb, simd::active_tier());
    const double total =
        static_cast<double>(sh.na + sh.nb) * reps;
    t.add_row({sh.name, bench::fmt_u64(sh.na), bench::fmt_u64(sh.nb),
               simd::intersect_algo_name(algo),
               simd::tier_name(simd::active_tier()), bench::fmt_u64(n_out),
               fmt_hex(engine_sum), match ? "yes" : "NO",
               bench::fmt_double(baseline_ms * 1e6 / total, 2),
               bench::fmt_double(engine_ms * 1e6 / total, 2),
               bench::fmt_double(baseline_ms / std::max(1e-12, engine_ms), 2)});
  }
  t.print();
  return all_ok;
}

// ---------------------------------------------------------------------------
// E-CPU.6: bitmap AND + popcount — engine vs the word-at-a-time loop.
// ---------------------------------------------------------------------------

bool run_bitmap_micro(bench::Reporter& rep) {
  auto& t = rep.table(
      "E-CPU.6: occupancy-bitmap AND+popcount, engine vs scalar loop",
      {"op", "words", "reps", "checksum", "identical",
       "baseline ns_per_word (wall_ms)", "engine ns_per_word (wall_ms)",
       "speedup (wall_ms ratio)"});
  bool all_ok = true;
  const std::size_t words = rep.smoke() ? (1u << 9) : (1u << 13);
  const int reps = rep.smoke() ? 20 : 200;
  util::Rng rng(rep.seed_for(0xC6));
  std::vector<std::uint64_t> a(words), b(words);
  for (auto& w : a) w = rng.next();
  for (auto& w : b) w = rng.next();

  MicroResult r;
  double t0 = cpu_seconds();
  for (int i = 0; i < reps; ++i) {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < words; ++w) {
      acc += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
    }
    r.checksum_baseline = acc;
  }
  r.baseline_ms = (cpu_seconds() - t0) * 1e3;
  t0 = cpu_seconds();
  for (int i = 0; i < reps; ++i) {
    r.checksum_engine = simd::bitmap_and_count(a, b);
  }
  r.engine_ms = (cpu_seconds() - t0) * 1e3;
  add_micro_row(t, "bitmap_and_count", words, reps, r, all_ok);

  t.print();
  return all_ok;
}

// ---------------------------------------------------------------------------
// E-CPU.7: scalar-vs-SIMD differential gate. Forces every dispatch tier
// the hardware supports against the scalar reference over a randomized
// battery; any mismatch fails the binary. No timing columns — this
// section exists purely so a silent divergence between tiers cannot
// survive a bench run even if the unit suite was skipped.
// ---------------------------------------------------------------------------

bool run_simd_differential_gate(bench::Reporter& rep) {
  auto& t = rep.table(
      "E-CPU.7: scalar-vs-SIMD differential gate (forced tiers)",
      {"tier", "intersect_cases", "hash_cases", "bitmap_cases", "identical"});
  bool all_ok = true;
  const int trials = rep.smoke() ? 12 : 60;
  const std::uint64_t universe = std::uint64_t{1} << 24;

  for (const simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse41, simd::Tier::kAvx2}) {
    if (tier > simd::detected_tier()) continue;
    std::uint64_t isect_cases = 0, hash_cases = 0, bitmap_cases = 0;
    bool tier_ok = true;
    util::Rng rng(rep.seed_for(0xC7));  // same battery for every tier

    // Intersection: every algorithm at this tier vs the scalar merge.
    for (int trial = 0; trial < trials; ++trial) {
      const std::size_t na = 1 + rng.below(1u << 10);
      const std::size_t nb = 1 + rng.below(1u << 12);
      const std::uint64_t u = std::max<std::uint64_t>(na + nb, 4 * nb);
      const util::Set a = util::random_set(rng, u, na);
      const util::Set b = util::random_set(rng, u, nb);
      std::vector<std::uint64_t> ref(std::min(na, nb) +
                                     simd::kIntersectPadding);
      std::vector<std::uint64_t> got(ref.size());
      const std::size_t n_ref = simd::intersect_sorted_with(
          simd::IntersectAlgo::kScalarMerge, simd::Tier::kScalar, a, b, ref);
      for (const simd::IntersectAlgo algo :
           {simd::IntersectAlgo::kScalarMerge, simd::IntersectAlgo::kGallop,
            simd::IntersectAlgo::kBlock, simd::IntersectAlgo::kBlockGallop}) {
        const std::size_t n_got =
            simd::intersect_sorted_with(algo, tier, a, b, got);
        tier_ok = tier_ok && intersect_checksum(got, n_got) ==
                                 intersect_checksum(ref, n_ref);
        ++isect_cases;
      }
    }

    // Hash lanes: batched evaluation under a forced tier vs element-wise.
    {
      const simd::ScopedTierOverride forced(tier);
      std::vector<std::uint64_t> xs(1u << 10), out(1u << 10);
      for (auto& x : xs) x = rng.below(universe);
      const auto h =
          hashing::PairwiseHash::sample(rng, universe, 512 * 512);
      h.hash_many(xs, out);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        tier_ok = tier_ok && out[i] == h(xs[i]);
        ++hash_cases;
      }
      const auto fks = hashing::FksCompressor::sample(rng, universe, 1024);
      fks.hash_many(xs, out);
      for (std::size_t i = 0; i < xs.size(); ++i) {
        tier_ok = tier_ok && out[i] == fks(xs[i]);
        ++hash_cases;
      }
    }

    // Bitmap kernels under a forced tier vs the plain loop.
    {
      const simd::ScopedTierOverride forced(tier);
      for (int trial = 0; trial < trials; ++trial) {
        const std::size_t words = 1 + rng.below(1u << 8);
        std::vector<std::uint64_t> a(words), b(words), out(words);
        for (auto& w : a) w = rng.next();
        for (auto& w : b) w = rng.next();
        std::uint64_t want = 0;
        for (std::size_t w = 0; w < words; ++w) {
          want += static_cast<std::uint64_t>(std::popcount(a[w] & b[w]));
        }
        tier_ok = tier_ok && simd::bitmap_and_count(a, b) == want;
        simd::bitmap_and(a, b, out);
        for (std::size_t w = 0; w < words; ++w) {
          tier_ok = tier_ok && out[w] == (a[w] & b[w]);
        }
        ++bitmap_cases;
      }
    }

    all_ok = all_ok && tier_ok;
    t.add_row({simd::tier_name(tier), bench::fmt_u64(isect_cases),
               bench::fmt_u64(hash_cases), bench::fmt_u64(bitmap_cases),
               tier_ok ? "yes" : "NO"});
  }
  t.print();

  obs::Json note = obs::Json::object();
  note["detected_tier"] = simd::tier_name(simd::detected_tier());
  note["dispatch_tier"] = simd::tier_name(simd::active_tier());
  note["gallop_ratio"] = std::uint64_t{simd::kGallopRatio};
  note["block_gallop_ratio"] = std::uint64_t{simd::kBlockGallopRatio};
  note["block_min_small"] = std::uint64_t{simd::kBlockMinSmall};
  rep.note("simd", std::move(note));
  return all_ok;
}

// Envelope audit table shared by main (the auditor collects samples from
// E-CPU.0 and E-CPU.2).
bool report_envelope(bench::Reporter& rep,
                     const obs::EnvelopeAuditor& auditor) {
  auto& t = rep.table("E-CPU.4: envelope audit over measured protocol runs",
                      {"protocol", "samples", "fitted c", "c bound", "slack",
                       "rounds violations", "within"});
  for (const obs::EnvelopeAudit& a : auditor.audit()) {
    t.add_row({a.protocol, bench::fmt_u64(a.samples),
               bench::fmt_double(a.fitted_c), bench::fmt_double(a.c_bound),
               bench::fmt_double(a.slack), bench::fmt_u64(a.rounds_violations),
               a.within() ? "YES" : "NO"});
  }
  t.print();
  rep.note("envelope_audit", auditor.ToJson());
  const bool ok = auditor.all_within();
  std::printf("\nEnvelope audit: %s\n", ok ? "ALL WITHIN" : "VIOLATED");
  return ok;
}

}  // namespace
}  // namespace setint

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("cpu", argc, argv);
  obs::EnvelopeAuditor auditor;
  auditor.expect("verification_tree");
  auditor.expect("one_round_hash");
  auditor.expect("bucket_eq");
  bool ok = run_identity_gate(rep, auditor);
  ok = run_substrate_micro(rep) && ok;
  run_protocol_throughput(rep, auditor);
  ok = run_telemetry_overhead(rep) && ok;
  ok = report_envelope(rep, auditor) && ok;
  ok = run_intersect_oracle(rep) && ok;
  ok = run_bitmap_micro(rep) && ok;
  ok = run_simd_differential_gate(rep) && ok;
  if (!ok) {
    std::fprintf(stderr,
                 "[exp_cpu] FAIL: engine diverged from the golden transcript, "
                 "a baseline checksum, an envelope, or the overhead gate\n");
  }
  return rep.finish(ok ? 0 : 1);
}
