// E10 — Fact 2.1 + the round-complexity corollary: EQ^k solved through
// INT_k at O(k log^(r) k) bits in O(r) stages, improving the
// Feder-Kushilevitz-Naor-Nisan O(sqrt k) round count to O(log* k).
//
// Expected shape: bits per equality instance are O(1)-ish and flat in
// both k and the string length n; rounds stay <= 6 log* k.
#include <cstdio>

#include "bench_util.h"
#include "reductions/eqk_to_int.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/iterated_log.h"
#include "util/rng.h"

namespace {

using namespace setint;

struct EqkRun {
  double bits_per_instance = 0;
  std::uint64_t rounds = 0;
  bool correct = true;
};

EqkRun run_eqk(std::size_t k, unsigned nbits, double equal_fraction,
               std::uint64_t seed) {
  std::vector<util::BitBuffer> xs;
  std::vector<util::BitBuffer> ys;
  std::vector<bool> truth;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < k; ++i) {
    const bool eq = rng.unit() < equal_fraction;
    util::BitBuffer x;
    util::BitBuffer y;
    for (unsigned w = 0; w < nbits; w += 64) {
      const std::uint64_t word = rng.next();
      x.append_bits(word, 64);
      y.append_bits(eq ? word : word ^ (1ull << (w % 61)), 64);
    }
    xs.push_back(std::move(x));
    ys.push_back(std::move(y));
    truth.push_back(eq);
  }
  sim::SharedRandomness shared(seed * 3 + 1);
  sim::Channel ch;
  const auto got = reductions::eqk_via_intersection(ch, shared, seed, xs, ys);
  EqkRun result;
  result.bits_per_instance =
      static_cast<double>(ch.cost().bits_total) / static_cast<double>(k);
  result.rounds = ch.cost().rounds;
  for (std::size_t i = 0; i < k; ++i) {
    if (got[i] != truth[i]) result.correct = false;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("eqk", argc, argv);

  {
    auto& table = rep.table(
        "E10a: EQ^k via INT_k — bits per instance vs k  (n = 256 bits, half "
        "equal)",
        {"k", "bits/instance", "rounds", "6*log*(k) budget", "all correct"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {64, 256, 1024, 4096, 16384}, {64, 256});
    for (std::size_t k : ks) {
      const EqkRun r = run_eqk(k, 256, 0.5, rep.seed_for(k));
      table.add_row(
          {bench::fmt_u64(k), bench::fmt_double(r.bits_per_instance),
           bench::fmt_u64(r.rounds),
           bench::fmt_u64(static_cast<std::uint64_t>(
               6 * util::log_star(static_cast<double>(k)))),
           r.correct ? "yes" : "NO"});
    }
    table.print();
  }

  {
    auto& table = rep.table(
        "E10b: independence of string length n  (k = 1024, half equal)",
        {"n (bits)", "bits/instance", "naive exchange bits/instance",
         "all correct"});
    const std::size_t k = rep.smoke() ? 128 : 1024;
    const std::vector<unsigned> ns = bench::sizes<unsigned>(
        rep.options(), {64, 256, 1024, 8192}, {64, 1024});
    for (unsigned nbits : ns) {
      const EqkRun r = run_eqk(k, nbits, 0.5, rep.seed_for(nbits));
      table.add_row({bench::fmt_u64(nbits),
                     bench::fmt_double(r.bits_per_instance),
                     bench::fmt_u64(nbits),  // shipping x_i costs n bits
                     r.correct ? "yes" : "NO"});
    }
    table.print();
    std::printf(
        "\nShape check: the reduction's cost is flat in n — equality on\n"
        "8192-bit strings costs the same as on 64-bit strings, versus the\n"
        "linear-in-n naive exchange.\n");
  }
  return rep.finish();
}
