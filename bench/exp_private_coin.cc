// E9 — Section 3.1: constructive private-coin protocol costs only an
// additive O(log k + log log n) over the shared-coin protocol, with no
// extra dependence on r.
//
// Expected shape: the explicit-seed column grows by O(1) bits each time
// log2(n) doubles (the log log n term), and stays tiny next to the
// protocol's O(k) bits.
#include <cstdio>

#include "bench_util.h"
#include "core/private_coin.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("private_coin", argc, argv);
  const std::size_t k = rep.smoke() ? 256 : 1024;

  auto& table = rep.table("E9: private-coin overhead vs universe size  (k = " +
                              std::to_string(k) + ")",
                          {"log2(n)", "seed bits", "prime attempts",
                           "private total", "shared total", "overhead",
                           "exact"});
  const std::vector<unsigned> log_ns = bench::sizes<unsigned>(
      rep.options(), {16, 24, 32, 40, 48, 56}, {16, 32});
  for (unsigned log_n : log_ns) {
    const std::uint64_t universe = std::uint64_t{1} << log_n;
    util::Rng wrng(rep.seed_for(log_n));
    const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);

    util::Rng prng(rep.seed_for(log_n, 99));
    sim::Channel private_ch;
    core::PrivateCoinStats stats;
    const auto out = core::private_coin_intersection(
        private_ch, prng, universe, p.s, p.t, {}, &stats);

    sim::SharedRandomness shared(rep.seed_for(log_n, 7));
    sim::Channel shared_ch;
    core::verification_tree_intersection(shared_ch, shared, rep.seed(),
                                         universe, p.s, p.t, {});

    const auto overhead =
        static_cast<std::int64_t>(private_ch.cost().bits_total) -
        static_cast<std::int64_t>(shared_ch.cost().bits_total);
    table.add_row({bench::fmt_u64(log_n), bench::fmt_u64(stats.seed_bits),
                   bench::fmt_u64(stats.prime_attempts),
                   bench::fmt_u64(private_ch.cost().bits_total),
                   bench::fmt_u64(shared_ch.cost().bits_total),
                   std::to_string(overhead),
                   out.alice == p.expected_intersection ? "yes" : "NO"});
  }
  table.print();
  std::printf(
      "\nShape check: seed bits grow ~O(1) per doubling of log2(n) — the\n"
      "O(log k + log log n) of Section 3.1 — and the net overhead can even\n"
      "be negative because FKS compression shrinks the working universe.\n");
  return rep.finish();
}
