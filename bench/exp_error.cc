// E4 — success probability 1 - 1/poly(k) and one-sidedness.
//
// Over many independent runs: count inexact outputs (should vanish as k
// grows) and superset-invariant violations (must be exactly zero — the
// guarantee holds with probability 1). A third table sabotages the
// equality hashes to show the error knob works and errors stay one-sided
// even then.
#include <cstdio>

#include "bench_util.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct ErrorCounts {
  int inexact = 0;
  int invariant_violations = 0;
};

ErrorCounts measure(std::size_t k, int trials,
                    const core::VerificationTreeParams& params,
                    std::uint64_t salt) {
  ErrorCounts counts;
  util::Rng wrng(k + salt);
  for (int t = 0; t < trials; ++t) {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
    sim::SharedRandomness shared(salt * 1000 + static_cast<std::uint64_t>(t));
    sim::Channel ch;
    const core::IntersectionOutput out = core::verification_tree_intersection(
        ch, shared, static_cast<std::uint64_t>(t), std::uint64_t{1} << 30,
        p.s, p.t, params);
    if (out.alice != p.expected_intersection ||
        out.bob != p.expected_intersection) {
      counts.inexact += 1;
    }
    if (!util::is_subset(p.expected_intersection, out.alice) ||
        !util::is_subset(p.expected_intersection, out.bob) ||
        !util::is_subset(out.alice, p.s) || !util::is_subset(out.bob, p.t)) {
      counts.invariant_violations += 1;
    }
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("error", argc, argv);

  int total_violations = 0;
  {
    auto& table = rep.table(
        "E4a: empirical failure rate vs k  (claim: 1 - 1/poly(k) success)",
        {"k", "trials", "inexact runs", "superset violations (must be 0)"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {16, 64, 256, 1024, 4096}, {16, 64, 256});
    for (std::size_t k : ks) {
      const int trials = rep.smoke() ? 25 : (k <= 256 ? 400 : 100);
      const ErrorCounts c = measure(k, trials, {}, rep.seed_for(k, 1));
      total_violations += c.invariant_violations;
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(trials),
                     bench::fmt_u64(c.inexact),
                     bench::fmt_u64(c.invariant_violations)});
    }
    table.print();
    std::printf("\nOne-sidedness held in every run: %s\n",
                total_violations == 0 ? "YES" : "NO");
  }

  {
    auto& table = rep.table(
        "E4b: sabotage ablation — 1-bit equality hashes (eq_bits_scale -> 0)",
        {"k", "trials", "inexact runs", "superset violations (must be 0)"});
    core::VerificationTreeParams hostile;
    hostile.rounds_r = 3;
    hostile.eq_bits_scale = 1e-9;
    const int trials = rep.smoke() ? 25 : 100;
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {64, 256, 1024}, {64, 256});
    for (std::size_t k : ks) {
      const ErrorCounts c = measure(k, trials, hostile, rep.seed_for(k, 2));
      total_violations += c.invariant_violations;
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(trials),
                     bench::fmt_u64(c.inexact),
                     bench::fmt_u64(c.invariant_violations)});
    }
    table.print();
    std::printf(
        "\nShape check: sabotaged verification raises the inexact count,\n"
        "but outputs remain supersets of the truth (errors one-sided).\n");
  }
  rep.note("superset_violations", total_violations);
  return rep.finish(total_violations == 0 ? 0 : 1);
}
