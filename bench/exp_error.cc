// E4 — success probability 1 - 1/poly(k) and one-sidedness.
//
// Over many independent runs: count inexact outputs (should vanish as k
// grows) and superset-invariant violations (must be exactly zero — the
// guarantee holds with probability 1). A third table sabotages the
// equality hashes to show the error knob works and errors stay one-sided
// even then.
#include <cstdio>

#include "bench_util.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct ErrorCounts {
  int inexact = 0;
  int invariant_violations = 0;
};

ErrorCounts measure(std::size_t k, int trials,
                    const core::VerificationTreeParams& params,
                    std::uint64_t salt) {
  ErrorCounts counts;
  util::Rng wrng(k + salt);
  for (int t = 0; t < trials; ++t) {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
    sim::SharedRandomness shared(salt * 1000 + static_cast<std::uint64_t>(t));
    sim::Channel ch;
    const core::IntersectionOutput out = core::verification_tree_intersection(
        ch, shared, static_cast<std::uint64_t>(t), std::uint64_t{1} << 30,
        p.s, p.t, params);
    if (out.alice != p.expected_intersection ||
        out.bob != p.expected_intersection) {
      counts.inexact += 1;
    }
    if (!util::is_subset(p.expected_intersection, out.alice) ||
        !util::is_subset(p.expected_intersection, out.bob) ||
        !util::is_subset(out.alice, p.s) || !util::is_subset(out.bob, p.t)) {
      counts.invariant_violations += 1;
    }
  }
  return counts;
}

}  // namespace

int main() {
  using namespace setint;

  bench::print_header(
      "E4a: empirical failure rate vs k  (claim: 1 - 1/poly(k) success)");
  {
    bench::Table table({"k", "trials", "inexact runs",
                        "superset violations (must be 0)"});
    int total_violations = 0;
    for (std::size_t k : {16u, 64u, 256u, 1024u, 4096u}) {
      const int trials = k <= 256 ? 400 : 100;
      const ErrorCounts c = measure(k, trials, {}, 1);
      total_violations += c.invariant_violations;
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(trials),
                     bench::fmt_u64(c.inexact),
                     bench::fmt_u64(c.invariant_violations)});
    }
    table.print();
    std::printf("\nOne-sidedness held in every run: %s\n",
                total_violations == 0 ? "YES" : "NO");
  }

  bench::print_header(
      "E4b: sabotage ablation — 1-bit equality hashes (eq_bits_scale -> 0)");
  {
    bench::Table table({"k", "trials", "inexact runs",
                        "superset violations (must be 0)"});
    core::VerificationTreeParams hostile;
    hostile.rounds_r = 3;
    hostile.eq_bits_scale = 1e-9;
    for (std::size_t k : {64u, 256u, 1024u}) {
      const ErrorCounts c = measure(k, 100, hostile, 2);
      table.add_row({bench::fmt_u64(k), "100", bench::fmt_u64(c.inexact),
                     bench::fmt_u64(c.invariant_violations)});
    }
    table.print();
    std::printf(
        "\nShape check: sabotaged verification raises the inexact count,\n"
        "but outputs remain supersets of the truth (errors one-sided).\n");
  }
  return 0;
}
