// C — chaos engineering: crash-restart, partitions and bursty links
// against the checkpoint/resume recovery layer (docs/ROBUSTNESS.md §
// crash faults).
//
// Sweeps crash rate x partition length x burst profile and pins the
// safety and efficiency claims end-to-end:
//   * at ANY chaos intensity there is never an unflagged wrong answer —
//     every non-degraded result is exact, every degraded result is a
//     superset of the true intersection (exit code 1 otherwise), and
//   * checkpointed recovery replays STRICTLY fewer bits than full-session
//     retry under identical chaos schedules at crash_prob <= 0.05 (the
//     whole point of phase-boundary checkpoints; also gated).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "multiparty/coordinator.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/chaos.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct ChaosTally {
  int trials = 0;
  int verified = 0;
  int degraded = 0;
  int unflagged_wrong = 0;      // must stay 0: the headline safety claim
  int superset_violations = 0;  // must stay 0: degraded answers are supersets
  std::uint64_t total_bits = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t total_attempts = 0;
  std::uint64_t total_restarts = 0;
  std::uint64_t total_bits_replayed = 0;
};

// Runs `trials` seeded facade calls, each with a fresh ChaosPlan (and
// optional FaultPlan) derived from the reporter seed, so two arms that
// differ only in `checkpoint` see IDENTICAL chaos schedules — the
// with/without comparison in C1 depends on it.
ChaosTally run_two_party(bench::Reporter& rep, std::uint64_t salt, int trials,
                         sim::ChaosSpec chaos_spec, bool checkpoint,
                         const sim::FaultSpec* faults, std::uint64_t universe,
                         std::size_t k) {
  ChaosTally tally;
  tally.trials = trials;
  util::Rng wrng(rep.seed_for(salt, 0xA0));
  for (int t = 0; t < trials; ++t) {
    const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 4);
    const std::uint64_t session_seed =
        rep.seed_for(salt, 0x5E00 + static_cast<std::uint64_t>(t));
    chaos_spec.seed = rep.seed_for(salt, 0xC500 + static_cast<std::uint64_t>(t));
    sim::ChaosPlan plan(chaos_spec, session_seed);
    std::unique_ptr<sim::FaultPlan> fault_plan;
    if (faults != nullptr) {
      sim::FaultSpec fs = *faults;
      fs.seed = rep.seed_for(salt, 0xFA00 + static_cast<std::uint64_t>(t));
      fault_plan = std::make_unique<sim::FaultPlan>(fs);
    }
    obs::Tracer tracer;
    IntersectOptions options;
    options.universe = universe;
    options.seed = session_seed;
    options.chaos_plan = &plan;
    options.checkpoint = checkpoint;
    options.fault_plan = fault_plan.get();
    options.tracer = &tracer;
    const IntersectResult result = intersect(pair.s, pair.t, options);
    rep.merge_metrics(tracer.metrics());
    if (result.verified) tally.verified += 1;
    if (result.degraded) tally.degraded += 1;
    if (!result.degraded && result.intersection != pair.expected_intersection) {
      tally.unflagged_wrong += 1;
    }
    if (!util::is_subset(pair.expected_intersection, result.intersection)) {
      tally.superset_violations += 1;
    }
    tally.total_bits += result.bits;
    tally.total_rounds += result.rounds;
    tally.total_attempts += result.repetitions;
    tally.total_restarts += result.restarts;
    tally.total_bits_replayed += result.bits_replayed;
  }
  return tally;
}

std::string pct(int part, int whole) {
  return bench::fmt_double(100.0 * part / std::max(1, whole), 1);
}

void add_tally_row(bench::Table& table, std::vector<std::string> prefix,
                   const ChaosTally& c) {
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.trials)));
  prefix.push_back(pct(c.verified, c.trials));
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.degraded)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.unflagged_wrong)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.superset_violations)));
  prefix.push_back(bench::fmt_u64(
      c.total_bits / static_cast<std::uint64_t>(std::max(1, c.trials))));
  prefix.push_back(bench::fmt_double(
      static_cast<double>(c.total_restarts) / std::max(1, c.trials), 2));
  prefix.push_back(bench::fmt_u64(
      c.total_bits_replayed /
      static_cast<std::uint64_t>(std::max(1, c.trials))));
  table.add_row(std::move(prefix));
}

const std::vector<std::string> kTallyColumns = {
    "trials",          "verified %",          "degraded",
    "unflagged wrong", "superset violations", "avg bits",
    "avg restarts",    "avg bits replayed"};

std::vector<std::string> with_prefix(std::vector<std::string> prefix) {
  std::vector<std::string> columns = std::move(prefix);
  columns.insert(columns.end(), kTallyColumns.begin(), kTallyColumns.end());
  return columns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("chaos", argc, argv);

  const std::uint64_t universe = std::uint64_t{1} << 16;
  const std::size_t k = 32;
  int violations = 0;
  bool checkpoint_wins = true;

  // C1: crash rate sweep, checkpointed vs full-retry recovery under
  // identical chaos schedules. The acceptance gate: at every rate <= 0.05
  // the checkpointed arm replays strictly fewer bits in total.
  {
    auto& table = rep.table(
        "C1: crash rate vs recovery mode  (k=32, n=2^16, restart=6 ticks)",
        with_prefix({"crash/send", "checkpoint"}));
    const std::vector<double> rates = bench::sizes<double>(
        rep.options(), {0.005, 0.01, 0.02, 0.05}, {0.01, 0.05});
    // Smoke keeps enough trials for the per-rate gate below to be stable
    // across seeds: the arms share crash schedules only up to the first
    // recovery (the no-checkpoint arm re-attempts under a fresh nonce),
    // so at low crash rates the per-trial difference is noisy and the
    // totals need sample size to separate.
    const int trials = rep.smoke() ? 120 : 200;
    for (double rate : rates) {
      sim::ChaosSpec spec;
      spec.crash.crash_prob = rate;
      spec.crash.restart_ticks = 6;
      const std::uint64_t salt = 0x100 + static_cast<std::uint64_t>(rate * 1e4);
      const ChaosTally with_ckpt =
          run_two_party(rep, salt, trials, spec, true, nullptr, universe, k);
      const ChaosTally without_ckpt =
          run_two_party(rep, salt, trials, spec, false, nullptr, universe, k);
      violations += with_ckpt.unflagged_wrong + with_ckpt.superset_violations +
                    without_ckpt.unflagged_wrong +
                    without_ckpt.superset_violations;
      if (with_ckpt.total_bits_replayed >= without_ckpt.total_bits_replayed) {
        checkpoint_wins = false;
      }
      add_tally_row(table, {bench::fmt_double(rate, 3), "yes"}, with_ckpt);
      add_tally_row(table, {bench::fmt_double(rate, 3), "no"}, without_ckpt);
    }
    table.print();
    std::printf("\ncheckpointed recovery replays strictly fewer bits at every "
                "crash rate <= 0.05: %s\n",
                checkpoint_wins ? "YES" : "NO");
  }

  // C2: partition length sweep. The link goes dark for a window of W ticks
  // early in the session; recovery waits it out and resumes.
  {
    auto& table =
        rep.table("C2: partition window length  (k=32, n=2^16, start=tick 8)",
                  with_prefix({"window ticks"}));
    const std::vector<std::uint64_t> windows = bench::sizes<std::uint64_t>(
        rep.options(), {4, 16, 64}, {4, 64});
    const int trials = rep.smoke() ? 20 : 150;
    for (std::uint64_t w : windows) {
      sim::ChaosSpec spec;
      sim::PartitionWindow window;
      window.a = 0;
      window.b = 1;
      window.start_tick = 8;
      window.end_tick = 8 + w;
      spec.partitions.push_back(window);
      const ChaosTally c = run_two_party(rep, 0x200 + w, trials, spec, true,
                                         nullptr, universe, k);
      violations += c.unflagged_wrong + c.superset_violations;
      add_tally_row(table, {bench::fmt_u64(w)}, c);
    }
    table.print();
  }

  // C3: Gilbert-Elliott bursts vs an iid fault plan with the same
  // stationary loss average. Bursts concentrate the damage, so they cost
  // more restarts/attempts at equal average loss — the reason the chaos
  // layer models them at all.
  {
    auto& table = rep.table(
        "C3: bursty loss vs matched-average iid  (k=32, n=2^16)",
        with_prefix({"profile"}));
    const int trials = rep.smoke() ? 20 : 150;
    // Burst: 2% of frames enter a bad state that drops 50% and flips
    // 1e-3/bit, leaving on average after 5 frames. Stationary bad-state
    // occupancy = p_gb / (p_gb + p_bg) = 0.02/0.22 ~ 9.1%; average drop
    // rate ~ 4.5%.
    sim::ChaosSpec burst_spec;
    burst_spec.burst.p_good_to_bad = 0.02;
    burst_spec.burst.p_bad_to_good = 0.2;
    burst_spec.burst.loss_bad = 0.5;
    burst_spec.burst.flip_bad = 1e-3;
    const ChaosTally bursty = run_two_party(rep, 0x300, trials, burst_spec,
                                            true, nullptr, universe, k);
    violations += bursty.unflagged_wrong + bursty.superset_violations;
    add_tally_row(table, {"GE burst (avg drop 4.5%)"}, bursty);
    sim::FaultSpec iid;
    iid.drop_prob = 0.045;
    iid.flip_per_bit = 1e-3 * (0.02 / 0.22);
    sim::ChaosSpec none;  // chaos disabled; iid plan carries the damage
    const ChaosTally smooth =
        run_two_party(rep, 0x301, trials, none, true, &iid, universe, k);
    violations += smooth.unflagged_wrong + smooth.superset_violations;
    add_tally_row(table, {"iid (same averages)"}, smooth);
    table.print();
  }

  // C4: multiparty coordinator under crash-restart chaos, including one
  // player that dies on first contact and never returns. The gate is
  // honest degradation: the answer must flag itself degraded and stay a
  // superset of the true m-way intersection.
  {
    auto& table = rep.table(
        "C4: coordinator with crash-restart + one dead player  "
        "(8 players, k=24, n=2^14)",
        {"scenario", "trials", "exact", "degraded runs",
         "superset violations", "dead-player skips", "avg restarts",
         "avg bits replayed"});
    const int trials = rep.smoke() ? 5 : 40;
    const std::uint64_t mp_universe = std::uint64_t{1} << 14;
    for (const bool with_dead_player : {false, true}) {
      int exact = 0;
      int degraded_runs = 0;
      int mp_violations = 0;
      int undegraded_dead = 0;
      std::uint64_t skips = 0;
      std::uint64_t restarts = 0;
      std::uint64_t bits_replayed = 0;
      util::Rng wrng(rep.seed_for(0x400, with_dead_player ? 2 : 1));
      for (int t = 0; t < trials; ++t) {
        const util::MultiSetInstance instance = util::random_multi_sets(
            wrng, mp_universe, /*players=*/8, /*k=*/24, /*shared=*/6);
        sim::ChaosSpec spec;
        spec.players = 8;
        spec.crash.crash_prob = 0.01;
        spec.crash.restart_ticks = 6;
        spec.seed = rep.seed_for(0x410 + static_cast<std::uint64_t>(t),
                                 with_dead_player ? 2 : 1);
        if (with_dead_player) {
          // Player 3 dies on first contact and never comes back.
          sim::CrashSchedule dead;
          dead.crash_prob = 1.0;
          dead.max_crashes = 0;
          spec.crash_overrides.emplace_back(3, dead);
        }
        const std::uint64_t session_seed = rep.seed_for(
            0x420 + static_cast<std::uint64_t>(t), with_dead_player ? 2 : 1);
        sim::ChaosPlan plan(spec, session_seed);
        obs::Tracer tracer;
        sim::Network network(instance.sets.size());
        network.set_tracer(&tracer);
        network.set_chaos_plan(&plan);
        sim::SharedRandomness shared(session_seed);
        multiparty::MultipartyParams params;
        const multiparty::MultipartyResult result =
            multiparty::coordinator_intersection(network, shared, mp_universe,
                                                 instance.sets, params);
        if (!util::is_subset(instance.expected_intersection,
                             result.intersection)) {
          mp_violations += 1;
        }
        if (!result.degraded &&
            result.intersection != instance.expected_intersection) {
          mp_violations += 1;  // unflagged wrong multiparty answer
        }
        // A run that lost a player MUST flag itself degraded.
        if (with_dead_player && !result.degraded) undegraded_dead += 1;
        if (result.intersection == instance.expected_intersection) exact += 1;
        if (result.degraded) degraded_runs += 1;
        skips += result.dead_player_skips;
        restarts += result.total_restarts;
        bits_replayed += result.total_bits_replayed;
        rep.merge_metrics(tracer.metrics());
      }
      violations += mp_violations + undegraded_dead;
      table.add_row(
          {with_dead_player ? "crash 1% + player 3 dead" : "crash 1%",
           bench::fmt_u64(static_cast<std::uint64_t>(trials)),
           bench::fmt_u64(static_cast<std::uint64_t>(exact)),
           bench::fmt_u64(static_cast<std::uint64_t>(degraded_runs)),
           bench::fmt_u64(static_cast<std::uint64_t>(mp_violations)),
           bench::fmt_u64(skips),
           bench::fmt_double(static_cast<double>(restarts) / trials, 2),
           bench::fmt_u64(bits_replayed /
                          static_cast<std::uint64_t>(trials))});
    }
    table.print();
  }

  std::printf("\nSafety held in every run (no unflagged wrong answers, "
              "no superset violations): %s\n",
              violations == 0 ? "YES" : "NO");
  rep.note("safety_violations", violations);
  rep.note("checkpoint_replays_fewer_bits", checkpoint_wins);
  // Both gates are deterministic functions of the seed: safety must hold in
  // every run, and checkpointed recovery must beat full retry whenever any
  // crash fired (the comparison runs identical schedules, so ties only
  // happen at zero restarts — strictly-fewer is required otherwise).
  const bool ok = violations == 0 && checkpoint_wins;
  return rep.finish(ok ? 0 : 1);
}
