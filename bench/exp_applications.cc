// E7 — applications inherit the tradeoff (paper Section 1,
// "Applications"): exact Jaccard similarity, union size / distinct
// elements, sparse Hamming distance, 1-/2-rarity, and distributed joins,
// all at O(k log^(r) k) bits + O(log* k) stages.
#include <cstdio>

#include "apps/join.h"
#include "apps/similarity.h"
#include "bench_util.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto reporter = bench::Reporter::FromArgs("applications", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 32;

  {
    auto& table = reporter.table(
        "E7a: exact similarity statistics at O(k) communication",
        {"k", "overlap", "jaccard", "hamming", "distinct", "rarity1",
         "rarity2", "bits/elem", "rounds", "exact"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        reporter.options(), {1024, 8192}, {1024});
    for (std::size_t k : ks) {
      for (double alpha : {0.1, 0.5, 0.9}) {
        util::Rng wrng(
            reporter.seed_for(k, static_cast<std::uint64_t>(alpha * 100)));
        const auto shared_count =
            static_cast<std::size_t>(alpha * static_cast<double>(k));
        const util::SetPair p =
            util::random_set_pair(wrng, universe, k, shared_count);
        sim::SharedRandomness shared(reporter.seed_for(k));
        sim::Channel ch;
        const apps::SimilarityReport rep = apps::similarity_report(
            ch, shared, reporter.seed(), universe, p.s, p.t);
        const util::Set uni = util::set_union(p.s, p.t);
        const bool exact =
            rep.intersection == p.expected_intersection &&
            rep.union_size == uni.size();
        table.add_row(
            {bench::fmt_u64(k), bench::fmt_double(alpha, 1),
             bench::fmt_double(rep.jaccard, 4),
             bench::fmt_u64(rep.symmetric_difference),
             bench::fmt_u64(rep.union_size),
             bench::fmt_double(rep.rarity1, 4),
             bench::fmt_double(rep.rarity2, 4),
             bench::fmt_double(static_cast<double>(ch.cost().bits_total) /
                               static_cast<double>(k)),
             bench::fmt_u64(ch.cost().rounds), exact ? "yes" : "NO"});
      }
    }
    table.print();
  }

  {
    auto& table = reporter.table(
        "E7b: distributed join — protocol plan vs naive ship-the-table",
        {"table k", "join size", "protocol+payload bits", "naive bits",
         "saving", "rows correct"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        reporter.options(), {512, 4096}, {512});
    for (std::size_t k : ks) {
      for (std::size_t join_size : {std::size_t{8}, k / 8, k / 2}) {
        util::Rng wrng(reporter.seed_for(k + join_size));
        const util::SetPair p =
            util::random_set_pair(wrng, universe, k, join_size);
        std::vector<apps::Row> left;
        std::vector<apps::Row> right;
        for (std::uint64_t key : p.s) {
          left.push_back(apps::Row{key, "order#" + std::to_string(key)});
        }
        for (std::uint64_t key : p.t) {
          right.push_back(apps::Row{key, "invoice#" + std::to_string(key)});
        }
        sim::SharedRandomness shared(reporter.seed_for(k * 3 + join_size));
        sim::Channel ch;
        const apps::JoinResult res = apps::distributed_join(
            ch, shared, reporter.seed(), universe, left, right);
        const std::uint64_t plan_bits =
            res.key_protocol_bits + res.payload_bits;
        table.add_row(
            {bench::fmt_u64(k), bench::fmt_u64(join_size),
             bench::fmt_u64(plan_bits), bench::fmt_u64(res.naive_bits),
             bench::fmt_double(static_cast<double>(res.naive_bits) /
                               static_cast<double>(plan_bits)) +
                 "x",
             res.rows.size() == p.expected_intersection.size() ? "yes"
                                                               : "NO"});
      }
    }
    table.print();
    std::printf(
        "\nShape check: savings are largest for selective joins (small\n"
        "join size), where shipping whole tables is most wasteful.\n");
  }
  return reporter.finish();
}
