// E2 — Theorem 1.1: round complexity is at most 6r (and the r = 1 case is
// a 2-message protocol). Reports measured rounds and messages against the
// 6r budget across the same (k, r) sweep as E1.
#include <cstdio>

#include "bench_util.h"
#include "core/verification_tree.h"
#include "obs/envelope.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("rounds", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 40;
  const int trials = rep.smoke() ? 2 : 5;
  const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
      rep.options(), {256, 4096, 65536}, {256, 4096});

  auto& table =
      rep.table("E2: measured rounds vs the 6r bound (Theorem 1.1)",
                {"k", "r", "rounds (worst of 5)", "6r bound", "messages"});
  // Every per-trial run also feeds the conformance auditor, so this
  // binary cross-checks the bit envelope alongside its round budgets.
  obs::EnvelopeAuditor auditor;
  auditor.expect("verification_tree");
  bool all_within = true;
  for (std::size_t k : ks) {
    util::Rng wrng(rep.seed_for(k));
    const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
    for (int r = 1; r <= 6; ++r) {
      std::uint64_t worst_rounds = 0;
      std::uint64_t worst_messages = 0;
      for (int t = 0; t < trials; ++t) {
        core::VerificationTreeParams params;
        params.rounds_r = r;
        const std::uint64_t seed =
            rep.seed_for(k + static_cast<std::uint64_t>(t),
                         static_cast<std::uint64_t>(r));
        sim::SharedRandomness shared(seed);
        sim::Channel ch;
        core::verification_tree_intersection(ch, shared, seed, universe, p.s,
                                             p.t, params);
        worst_rounds = std::max(worst_rounds, ch.cost().rounds);
        worst_messages = std::max(worst_messages, ch.cost().messages);
        auditor.add("verification_tree",
                    {k, r, ch.cost().bits_total, ch.cost().rounds, 1});
      }
      all_within &= worst_rounds <= static_cast<std::uint64_t>(6 * r);
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(r),
                     bench::fmt_u64(worst_rounds),
                     bench::fmt_u64(static_cast<std::uint64_t>(6 * r)),
                     bench::fmt_u64(worst_messages)});
    }
  }
  table.print();
  std::printf("\nAll runs within the 6r budget: %s\n",
              all_within ? "YES" : "NO");
  rep.note("all_within_budget", all_within);

  // Envelope audit over every per-trial sample (worst-case fit, not the
  // table's worst-of-trials aggregation).
  bool envelope_ok = true;
  {
    auto& audit_table = rep.table(
        "E2b: envelope audit  (bits <= c * k * (log^(r) k + r), rounds <= 6r)",
        {"protocol", "samples", "fitted c", "c bound", "slack",
         "rounds violations", "within"});
    for (const obs::EnvelopeAudit& a : auditor.audit()) {
      audit_table.add_row(
          {a.protocol, bench::fmt_u64(a.samples), bench::fmt_double(a.fitted_c),
           bench::fmt_double(a.c_bound), bench::fmt_double(a.slack),
           bench::fmt_u64(a.rounds_violations), a.within() ? "YES" : "NO"});
    }
    audit_table.print();
    envelope_ok = auditor.all_within();
    rep.note("envelope_audit", auditor.ToJson());
    std::printf("\nEnvelope audit: %s\n",
                envelope_ok ? "ALL WITHIN" : "VIOLATED");
  }
  return rep.finish(all_within && envelope_ok ? 0 : 1);
}
