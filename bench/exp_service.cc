// S — sans-IO service engine: sessions/sec and simulated round-trip
// latency for the runtime/scheduler.h event loop multiplexing 10^4+
// interleaved protocol machines per thread (docs/PROTOCOL.md § sans-IO
// engine).
//
// Sections and acceptance gates (exit code 1 if any fails):
//   * S1 mixed fleet, every core protocol kind, ALL sessions concurrent:
//     every scheduler-driven session's streaming transcript digest must
//     be bit-identical to a blocking run of the same seed (no sampling —
//     every session is checked), zero failed sessions, and the fleet's
//     peak concurrency must reach the full session count (>= 10^4 in
//     --smoke on one core);
//   * S2 Zipf-distributed set sizes (inverse-CDF rank sampling over
//     theta in {0, 0.8, 1.2}): p50/p99 simulated ack round-trip and
//     session completion ticks, plus throughput;
//   * S3 thread invariance: the identical fleet run with 1, 2 and
//     --threads shards must produce the same digest fold, completion
//     counts, peak concurrency and latency histograms (wall-clock
//     aside).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/basic_intersection.h"
#include "core/bucket_eq.h"
#include "core/engine.h"
#include "core/verification_tree.h"
#include "eq/amortized_eq.h"
#include "runtime/scheduler.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

constexpr std::uint64_t kUniverse = std::uint64_t{1} << 16;

// One session's deterministic shape: protocol kind round-robin, input
// sizes from the per-session substream (S2 overrides the size draw).
core::MachineConfig session_config(std::uint64_t seed, std::uint64_t g,
                                   std::size_t k) {
  core::MachineConfig cfg;
  cfg.seed = util::mix64(seed, 2 * g + 1);
  cfg.nonce = util::mix64(seed, util::mix64(0x5e55, g));
  cfg.universe = kUniverse;
  util::Rng rng(util::mix64(cfg.seed, 0x15e7));
  const auto pair =
      util::random_set_pair(rng, cfg.universe, k, rng.below(k + 1));
  cfg.s = pair.s;
  cfg.t = pair.t;
  cfg.eq_instances = 4;
  return cfg;
}

std::string_view kind_of(std::uint64_t g) {
  return core::kMachineKinds[g % 4];
}

// Blocking engine reference: the bare protocol function over a
// digest-enabled channel — no sans-IO engine, no framing, no scheduler.
// What S1 compares EVERY scheduler-driven session to.
struct BlockingRef {
  std::uint64_t digest = 0;
  std::uint64_t bits = 0;
};

BlockingRef blocking_reference(std::string_view kind,
                               const core::MachineConfig& cfg) {
  sim::Channel channel;
  channel.enable_digest();
  const sim::SharedRandomness shared(cfg.seed);
  if (kind == "bi") {
    core::basic_intersection(channel, shared, cfg.nonce, cfg.universe, cfg.s,
                             cfg.t, cfg.bi_target_failure);
  } else if (kind == "vt") {
    core::verification_tree_intersection(channel, shared, cfg.nonce,
                                         cfg.universe, cfg.s, cfg.t, cfg.tree);
  } else if (kind == "bucket_eq") {
    core::bucket_eq_intersection(channel, shared, cfg.nonce, cfg.universe,
                                 cfg.s, cfg.t, cfg.bucket_eq_strength);
  } else {
    std::vector<util::BitBuffer> xs, ys;
    core::make_amortized_eq_inputs(
        cfg.seed, cfg.eq_instances != 0
                      ? cfg.eq_instances
                      : std::max<std::size_t>(cfg.s.size(), 4),
        &xs, &ys);
    eq::amortized_equality(channel, shared, cfg.nonce, xs, ys);
  }
  return {channel.digest(), channel.cost().bits_total};
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Inverse-CDF sample of a Zipf(theta) rank in [1, ranks]: weight r^-theta.
std::size_t zipf_rank(util::Rng& rng, double theta, std::size_t ranks,
                      const std::vector<double>& cdf) {
  (void)theta;
  const double u = rng.unit() * cdf[ranks - 1];
  std::size_t lo = 0, hi = ranks - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("service", argc, argv);
  bool ok = true;

  const std::size_t fleet =
      rep.smoke() ? std::size_t{10'000} : std::size_t{40'000};

  // ---- S1: mixed fleet, digest gate against the blocking engine ----
  {
    const std::uint64_t seed = rep.seed_for(1);
    std::vector<BlockingRef> refs(fleet);
    std::vector<std::unique_ptr<core::ProtocolMachine>> machines;
    machines.reserve(fleet);
    const auto t_build = std::chrono::steady_clock::now();
    for (std::size_t g = 0; g < fleet; ++g) {
      util::Rng size_rng(util::mix64(seed, util::mix64(0x512e, g)));
      const std::size_t k = 4 + size_rng.below(13);  // 4..16
      core::MachineConfig cfg = session_config(seed, g, k);
      refs[g] = blocking_reference(kind_of(g), cfg);
      machines.push_back(core::make_machine(kind_of(g), std::move(cfg)));
    }
    const double build_ms = ms_since(t_build);

    runtime::SchedulerOptions opts;
    opts.seed = rep.seed_for(1, 2);
    opts.shuffle = true;
    opts.max_ack_latency = 4;
    opts.chunk_bytes = 11;  // force mid-frame parks on the ack stream
    opts.arrival_window = 0;  // everyone concurrent: peak == fleet
    const auto t_run = std::chrono::steady_clock::now();
    runtime::ServiceRun run =
        runtime::run_service(std::move(machines), opts, /*threads=*/1);
    const double run_ms = ms_since(t_run);

    std::uint64_t digest_mismatches = 0;
    std::uint64_t bits_mismatches = 0;
    std::uint64_t parked_sessions = 0;
    for (std::size_t g = 0; g < fleet; ++g) {
      const runtime::SessionRecord& rec = run.record(g);
      if (rec.digest != refs[g].digest) digest_mismatches += 1;
      if (rec.bits_total != refs[g].bits) bits_mismatches += 1;
      if (rec.frame_parks > 0) parked_sessions += 1;
    }
    const bool s1_ok = digest_mismatches == 0 && bits_mismatches == 0 &&
                       run.failed == 0 && run.completed == fleet &&
                       run.peak_inflight >= std::min<std::uint64_t>(fleet,
                                                                    10'000) &&
                       parked_sessions > 0;
    ok = ok && s1_ok;

    auto& table = rep.table(
        "S1: mixed fleet vs blocking engine  (4 kinds round-robin, n=2^16)",
        {"sessions", "completed", "failed", "peak_inflight",
         "digest_mismatches", "bits_mismatches", "parked_sessions", "events",
         "gate", "sessions/s (wall_ms)", "build sessions/s (wall_ms)"});
    table.add_row(
        {bench::fmt_u64(fleet), bench::fmt_u64(run.completed),
         bench::fmt_u64(run.failed), bench::fmt_u64(run.peak_inflight),
         bench::fmt_u64(digest_mismatches), bench::fmt_u64(bits_mismatches),
         bench::fmt_u64(parked_sessions), bench::fmt_u64(run.events_processed),
         s1_ok ? "PASS" : "FAIL",
         bench::fmt_double(static_cast<double>(fleet) / (run_ms / 1000.0), 0),
         bench::fmt_double(static_cast<double>(fleet) / (build_ms / 1000.0),
                           0)});
  }

  // ---- S2: Zipf-distributed set sizes -> RTT / completion latency ----
  {
    const std::size_t sessions = rep.smoke() ? 2'000 : 8'000;
    constexpr std::size_t kRanks = 61;  // sizes 4..64
    auto& table = rep.table(
        "S2: Zipf set sizes -> simulated latency  (sizes 4..64, n=2^16)",
        {"theta", "sessions", "rtt_p50", "rtt_p99", "complete_p50",
         "complete_p99", "peak_inflight", "events",
         "sessions/s (wall_ms)"});
    for (const double theta : {0.0, 0.8, 1.2}) {
      const std::uint64_t seed =
          rep.seed_for(2, static_cast<std::uint64_t>(theta * 10));
      std::vector<double> cdf(kRanks);
      double acc = 0.0;
      for (std::size_t r = 0; r < kRanks; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
        cdf[r] = acc;
      }
      std::vector<std::unique_ptr<core::ProtocolMachine>> machines;
      machines.reserve(sessions);
      for (std::size_t g = 0; g < sessions; ++g) {
        util::Rng size_rng(util::mix64(seed, util::mix64(0x21f, g)));
        const std::size_t k = 3 + zipf_rank(size_rng, theta, kRanks, cdf);
        machines.push_back(
            core::make_machine(kind_of(g), session_config(seed, g, k)));
      }
      runtime::SchedulerOptions opts;
      opts.seed = util::mix64(seed, 0x5c4e);
      opts.max_ack_latency = 8;
      opts.chunk_bytes = 11;
      opts.arrival_window = 256;
      const auto t_run = std::chrono::steady_clock::now();
      runtime::ServiceRun run =
          runtime::run_service(std::move(machines), opts, /*threads=*/1);
      const double run_ms = ms_since(t_run);
      ok = ok && run.failed == 0 && run.completed == sessions;
      table.add_row(
          {bench::fmt_double(theta, 1), bench::fmt_u64(sessions),
           bench::fmt_u64(run.ack_rtt.p50()), bench::fmt_u64(run.ack_rtt.p99()),
           bench::fmt_u64(run.completion_ticks.p50()),
           bench::fmt_u64(run.completion_ticks.p99()),
           bench::fmt_u64(run.peak_inflight),
           bench::fmt_u64(run.events_processed),
           bench::fmt_double(static_cast<double>(sessions) / (run_ms / 1000.0),
                             0)});
    }
  }

  // ---- S3: thread invariance of every aggregate ----
  {
    const std::size_t sessions = rep.smoke() ? 2'000 : 6'000;
    const std::uint64_t seed = rep.seed_for(3);
    const int max_threads = rep.threads() > 1 ? rep.threads() : 4;
    runtime::SchedulerOptions opts;
    opts.seed = util::mix64(seed, 0x731d);
    opts.max_ack_latency = 4;
    opts.chunk_bytes = 7;
    opts.arrival_window = 64;

    auto build = [&] {
      std::vector<std::unique_ptr<core::ProtocolMachine>> machines;
      machines.reserve(sessions);
      for (std::size_t g = 0; g < sessions; ++g) {
        util::Rng size_rng(util::mix64(seed, util::mix64(0x3e3, g)));
        const std::size_t k = 4 + size_rng.below(13);
        machines.push_back(
            core::make_machine(kind_of(g), session_config(seed, g, k)));
      }
      return machines;
    };

    auto& table = rep.table(
        "S3: thread invariance  (same fleet, 1/2/N shards)",
        {"threads", "sessions", "completed", "failed", "peak_inflight",
         "digest_fold", "rtt_p99", "complete_p99", "gate",
         "sessions/s (wall_ms)"});
    runtime::ServiceRun base;
    bool have_base = false;
    for (const int threads : {1, 2, max_threads}) {
      const auto t_run = std::chrono::steady_clock::now();
      runtime::ServiceRun run = runtime::run_service(build(), opts, threads);
      const double run_ms = ms_since(t_run);
      bool same = true;
      if (have_base) {
        same = run.digest_fold == base.digest_fold &&
               run.completed == base.completed && run.failed == base.failed &&
               run.peak_inflight == base.peak_inflight &&
               run.events_processed == base.events_processed &&
               run.ack_rtt.count() == base.ack_rtt.count() &&
               run.ack_rtt.sum() == base.ack_rtt.sum() &&
               run.completion_ticks.count() == base.completion_ticks.count() &&
               run.completion_ticks.sum() == base.completion_ticks.sum();
      }
      ok = ok && same && run.failed == 0;
      table.add_row(
          {bench::fmt_u64(static_cast<std::uint64_t>(threads)),
           bench::fmt_u64(sessions), bench::fmt_u64(run.completed),
           bench::fmt_u64(run.failed), bench::fmt_u64(run.peak_inflight),
           bench::fmt_u64(run.digest_fold), bench::fmt_u64(run.ack_rtt.p99()),
           bench::fmt_u64(run.completion_ticks.p99()), same ? "PASS" : "FAIL",
           bench::fmt_double(static_cast<double>(sessions) / (run_ms / 1000.0),
                             0)});
      if (!have_base) {
        base = std::move(run);
        have_base = true;
      }
    }
  }

  rep.note("gates_ok", obs::Json(ok));
  return rep.finish(ok ? 0 : 1);
}
