// E13 — optimality context: the r-round tradeoff for DISJOINTNESS
// (Saglam-Tardos-style sparse-set protocol, whose Omega(k log^(r) k)
// lower bound [ST13] is what makes the paper's INT_k protocols optimal)
// next to the r-round tradeoff for finding the INTERSECTION.
//
// Expected shape: both columns decay like log^(r) k as r grows — the same
// tradeoff curve for the decision and the search problem, which is the
// paper's headline ("our algorithms are optimal up to constant factors in
// communication and number of rounds"). The intersection column sits a
// constant factor above the decision column: recovering the witness is
// not asymptotically harder than deciding.
#include <cstdio>

#include "baselines/st13_disjointness.h"
#include "bench_util.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/iterated_log.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("disj_tradeoff", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 32;
  const std::size_t k = rep.smoke() ? 1024 : 8192;

  auto& table = rep.table(
      "E13: r-round tradeoff, DISJ (ST13-style) vs INT (Theorem 1.1), "
      "k = " + std::to_string(k),
      {"r", "DISJ bits/elem (disjoint)", "DISJ bits/elem (intersecting)",
       "DISJ correct", "INT bits/elem", "INT exact", "log^(r) k"});
  for (int r = 1; r <= 5; ++r) {
    util::Rng wrng(rep.seed_for(static_cast<std::uint64_t>(r)));
    const util::SetPair disjoint_pair =
        util::random_set_pair(wrng, universe, k, 0);
    const util::SetPair overlapping_pair =
        util::random_set_pair(wrng, universe, k, k / 2);

    sim::SharedRandomness shared(
        rep.seed_for(static_cast<std::uint64_t>(r) * 11));
    sim::Channel disj_ch;
    const auto disj_answer = baselines::st13_disjointness(
        disj_ch, shared, 0, universe, disjoint_pair.s, disjoint_pair.t, r);
    sim::Channel int_ch_for_disj;
    const auto intersecting_answer = baselines::st13_disjointness(
        int_ch_for_disj, shared, 1, universe, overlapping_pair.s,
        overlapping_pair.t, r);
    const bool disj_correct =
        disj_answer.disjoint && !intersecting_answer.disjoint;

    core::VerificationTreeParams params;
    params.rounds_r = r;
    sim::Channel tree_ch;
    const auto out = core::verification_tree_intersection(
        tree_ch, shared, 2, universe, overlapping_pair.s, overlapping_pair.t,
        params);
    const bool exact = out.alice == overlapping_pair.expected_intersection;

    table.add_row(
        {bench::fmt_u64(static_cast<std::uint64_t>(r)),
         bench::fmt_double(static_cast<double>(disj_ch.cost().bits_total) /
                           static_cast<double>(k)),
         bench::fmt_double(
             static_cast<double>(int_ch_for_disj.cost().bits_total) /
             static_cast<double>(k)),
         disj_correct ? "yes" : "NO",
         bench::fmt_double(static_cast<double>(tree_ch.cost().bits_total) /
                           static_cast<double>(k)),
         exact ? "yes" : "NO",
         bench::fmt_double(util::iterated_log(r, static_cast<double>(k)))});
  }
  table.print();
  std::printf(
      "\nShape check: on disjoint inputs both problems ride the same\n"
      "log^(r) k curve, and the search problem (INT) pays only a constant\n"
      "factor over the decision problem (DISJ) — the paper's optimality\n"
      "claim against the [ST13] lower bound. The ST13 intersecting column\n"
      "exposes why these techniques don't extend to INT_k: common\n"
      "elements survive every sparse round, so its endgame must ship all\n"
      "~k/2 survivors at Theta(log k) bits each, erasing the tradeoff\n"
      "exactly when the intersection is large. The verification tree\n"
      "handles that case at the same flat cost (see E8).\n");
  return rep.finish();
}
