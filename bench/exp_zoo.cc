// E3 — The protocol zoo: D^(1) = O(k log(n/k)) vs R^(1) = O(k log k) vs
// Theorem 3.1 (bucket-EQ, O(k)) vs Theorem 1.1 (tree, O(k)) — who wins
// where, in communication AND rounds.
//
// Expected shape:
//   * deterministic exchange grows linearly in log2(n/k); every
//     randomized protocol is flat in n -> crossover as n grows;
//   * one-round hashing grows with log2 k; tree/bucket-EQ stay flat in k
//     -> crossover as k grows;
//   * rounds: deterministic 1-2, one-round 2, tree <= 6 log* k,
//     bucket-EQ polylog (within Theorem 3.1's O(sqrt k)).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

std::vector<std::unique_ptr<core::IntersectionProtocol>> make_zoo() {
  std::vector<std::unique_ptr<core::IntersectionProtocol>> zoo;
  zoo.push_back(std::make_unique<core::DeterministicExchangeProtocol>());
  zoo.push_back(std::make_unique<core::OneRoundHashProtocol>());
  zoo.push_back(std::make_unique<core::ToyBucketProtocol>());
  zoo.push_back(std::make_unique<core::BucketEqProtocol>());
  zoo.push_back(std::make_unique<core::VerificationTreeProtocol>());
  zoo.push_back(std::make_unique<core::PrivateCoinProtocol>());
  return zoo;
}

}  // namespace

int main() {
  using namespace setint;
  const auto zoo = make_zoo();

  bench::print_header(
      "E3a: bits per element vs universe size n  (k = 4096, overlap 50%)");
  {
    std::vector<std::string> cols{"log2(n)"};
    for (const auto& p : zoo) cols.push_back(p->name());
    bench::Table table(cols);
    for (unsigned log_n : {16u, 24u, 32u, 40u, 48u, 56u, 62u}) {
      const std::uint64_t universe = std::uint64_t{1} << log_n;
      const std::size_t k = 4096;
      util::Rng wrng(log_n);
      const util::SetPair pair = util::random_set_pair(wrng, universe, k,
                                                       k / 2);
      std::vector<std::string> row{bench::fmt_u64(log_n)};
      for (const auto& proto : zoo) {
        const core::RunResult r = proto->run(log_n, universe, pair.s, pair.t);
        row.push_back(bench::fmt_double(
            static_cast<double>(r.cost.bits_total) / static_cast<double>(k)));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "\nShape check: the deterministic column grows ~1.5 bits per unit\n"
        "of log2(n) (Rice-coded, near the set-entropy optimum); all\n"
        "randomized columns are flat, so each crosses it as n grows.\n");
  }

  bench::print_header(
      "E3b: bits per element vs k  (n = 2^30, overlap 50%)");
  {
    std::vector<std::string> cols{"k"};
    for (const auto& p : zoo) cols.push_back(p->name());
    bench::Table table(cols);
    for (std::size_t k : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
      const std::uint64_t universe = std::uint64_t{1} << 30;
      util::Rng wrng(k);
      const util::SetPair pair = util::random_set_pair(wrng, universe, k,
                                                       k / 2);
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (const auto& proto : zoo) {
        const core::RunResult r = proto->run(k, universe, pair.s, pair.t);
        row.push_back(bench::fmt_double(
            static_cast<double>(r.cost.bits_total) / static_cast<double>(k)));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "\nShape check: one-round-hash grows ~3 bits per doubling of k\n"
        "(Theta(k log k)); tree and bucket-EQ stay ~flat (Theta(k)).\n");
  }

  bench::print_header("E3c: rounds used by each protocol  (k = 4096)");
  {
    std::vector<std::string> cols{"protocol", "rounds", "messages",
                                  "bits/elem"};
    bench::Table table(cols);
    const std::uint64_t universe = std::uint64_t{1} << 30;
    const std::size_t k = 4096;
    util::Rng wrng(7);
    const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 2);
    for (const auto& proto : zoo) {
      const core::RunResult r = proto->run(99, universe, pair.s, pair.t);
      table.add_row({proto->name(), bench::fmt_u64(r.cost.rounds),
                     bench::fmt_u64(r.cost.messages),
                     bench::fmt_double(static_cast<double>(r.cost.bits_total) /
                                       static_cast<double>(k))});
    }
    table.print();
  }
  return 0;
}
