// E3 — The protocol zoo: D^(1) = O(k log(n/k)) vs R^(1) = O(k log k) vs
// Theorem 3.1 (bucket-EQ, O(k)) vs Theorem 1.1 (tree, O(k)) — who wins
// where, in communication AND rounds.
//
// Expected shape:
//   * deterministic exchange grows linearly in log2(n/k); every
//     randomized protocol is flat in n -> crossover as n grows;
//   * one-round hashing grows with log2 k; tree/bucket-EQ stay flat in k
//     -> crossover as k grows;
//   * rounds: deterministic 1-2, one-round 2, tree <= 6 log* k,
//     bucket-EQ polylog (within Theorem 3.1's O(sqrt k)).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/bucket_eq.h"
#include "core/deterministic_exchange.h"
#include "core/one_round_hash.h"
#include "core/private_coin.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

std::vector<std::unique_ptr<core::IntersectionProtocol>> make_zoo() {
  std::vector<std::unique_ptr<core::IntersectionProtocol>> zoo;
  zoo.push_back(std::make_unique<core::DeterministicExchangeProtocol>());
  zoo.push_back(std::make_unique<core::OneRoundHashProtocol>());
  zoo.push_back(std::make_unique<core::ToyBucketProtocol>());
  zoo.push_back(std::make_unique<core::BucketEqProtocol>());
  zoo.push_back(std::make_unique<core::VerificationTreeProtocol>());
  zoo.push_back(std::make_unique<core::PrivateCoinProtocol>());
  return zoo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("zoo", argc, argv);
  const auto zoo = make_zoo();

  {
    const std::size_t k = rep.smoke() ? 1024 : 4096;
    std::vector<std::string> cols{"log2(n)"};
    for (const auto& p : zoo) cols.push_back(p->name());
    auto& table = rep.table(
        "E3a: bits per element vs universe size n  (k = " + std::to_string(k) +
            ", overlap 50%)",
        std::move(cols));
    const std::vector<unsigned> log_ns = bench::sizes<unsigned>(
        rep.options(), {16, 24, 32, 40, 48, 56, 62}, {16, 32, 48});
    for (unsigned log_n : log_ns) {
      const std::uint64_t universe = std::uint64_t{1} << log_n;
      util::Rng wrng(rep.seed_for(log_n));
      const util::SetPair pair = util::random_set_pair(wrng, universe, k,
                                                       k / 2);
      std::vector<std::string> row{bench::fmt_u64(log_n)};
      for (const auto& proto : zoo) {
        const core::RunResult r =
            proto->run(rep.seed_for(log_n, 1), universe, pair.s, pair.t);
        row.push_back(bench::fmt_double(
            static_cast<double>(r.cost.bits_total) / static_cast<double>(k)));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "\nShape check: the deterministic column grows ~1.5 bits per unit\n"
        "of log2(n) (Rice-coded, near the set-entropy optimum); all\n"
        "randomized columns are flat, so each crosses it as n grows.\n");
  }

  {
    std::vector<std::string> cols{"k"};
    for (const auto& p : zoo) cols.push_back(p->name());
    auto& table = rep.table("E3b: bits per element vs k  (n = 2^30, overlap "
                            "50%)",
                            std::move(cols));
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {64, 256, 1024, 4096, 16384, 65536}, {64, 1024});
    for (std::size_t k : ks) {
      const std::uint64_t universe = std::uint64_t{1} << 30;
      util::Rng wrng(rep.seed_for(k));
      const util::SetPair pair = util::random_set_pair(wrng, universe, k,
                                                       k / 2);
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (const auto& proto : zoo) {
        const core::RunResult r =
            proto->run(rep.seed_for(k, 1), universe, pair.s, pair.t);
        row.push_back(bench::fmt_double(
            static_cast<double>(r.cost.bits_total) / static_cast<double>(k)));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "\nShape check: one-round-hash grows ~3 bits per doubling of k\n"
        "(Theta(k log k)); tree and bucket-EQ stay ~flat (Theta(k)).\n");
  }

  {
    auto& table = rep.table("E3c: rounds used by each protocol  (k = 4096)",
                            {"protocol", "rounds", "messages", "bits/elem"});
    const std::uint64_t universe = std::uint64_t{1} << 30;
    const std::size_t k = rep.smoke() ? 1024 : 4096;
    util::Rng wrng(rep.seed_for(7));
    const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 2);
    for (const auto& proto : zoo) {
      const core::RunResult r =
          proto->run(rep.seed_for(99), universe, pair.s, pair.t);
      table.add_row({proto->name(), bench::fmt_u64(r.cost.rounds),
                     bench::fmt_u64(r.cost.messages),
                     bench::fmt_double(static_cast<double>(r.cost.bits_total) /
                                       static_cast<double>(k))});
    }
    table.print();
  }
  return rep.finish();
}
