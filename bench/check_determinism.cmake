# Runs BENCH_BIN twice with the same seed and asserts the JSON records are
# identical after stripping every line mentioning wall_ms: the trailing
# wall_ms field plus any timing table column, whose names must contain
# "wall_ms" for exactly this filter (the bench_util.h contract).
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<exe> -DOUT_DIR=<dir> -P check_determinism.cmake

foreach(run a b)
  execute_process(
    COMMAND ${BENCH_BIN} --smoke --seed=42
            --json=${OUT_DIR}/determinism_${run}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench run ${run} failed with exit code ${rc}")
  endif()
endforeach()

foreach(run a b)
  file(STRINGS ${OUT_DIR}/determinism_${run}.json lines_${run})
  set(filtered_${run} "")
  foreach(line IN LISTS lines_${run})
    if(NOT line MATCHES "wall_ms")
      string(APPEND filtered_${run} "${line}\n")
    endif()
  endforeach()
endforeach()

if(NOT filtered_a STREQUAL filtered_b)
  message(FATAL_ERROR
          "same-seed bench runs produced different JSON records "
          "(${OUT_DIR}/determinism_a.json vs determinism_b.json)")
endif()
message(STATUS "bench determinism check passed")
