# Runs BENCH_BIN twice with the same seed and asserts the JSON records are
# identical after stripping the wall_ms line (the only volatile field —
# bench_util.h keeps it alone on its own line for exactly this filter).
#
# Invoked by ctest as:
#   cmake -DBENCH_BIN=<exe> -DOUT_DIR=<dir> -P check_determinism.cmake

foreach(run a b)
  execute_process(
    COMMAND ${BENCH_BIN} --smoke --seed=42
            --json=${OUT_DIR}/determinism_${run}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench run ${run} failed with exit code ${rc}")
  endif()
endforeach()

foreach(run a b)
  file(STRINGS ${OUT_DIR}/determinism_${run}.json lines_${run})
  set(filtered_${run} "")
  foreach(line IN LISTS lines_${run})
    if(NOT line MATCHES "\"wall_ms\"")
      string(APPEND filtered_${run} "${line}\n")
    endif()
  endforeach()
endforeach()

if(NOT filtered_a STREQUAL filtered_b)
  message(FATAL_ERROR
          "same-seed bench runs produced different JSON records "
          "(${OUT_DIR}/determinism_a.json vs determinism_b.json)")
endif()
message(STATUS "bench determinism check passed")
