// E-batch — throughput of the parallel batch engine (runtime/batch.h).
//
// Runs one fixed workload of independent intersection sessions through
// setint::run_batch at several thread counts and reports:
//
//   * wall-clock per thread count and the speedup over threads=1, and
//   * a bit-identity verdict: every per-session result, per-session run
//     report and the merged metrics JSON must match the serial run
//     byte for byte (the determinism contract pinned by batch_test.cc).
//
// The exit code gates on bit-identity, not on speedup: scaling depends on
// the machine (hardware_concurrency is recorded in the JSON), correctness
// does not. Timing cells live in columns whose names contain "wall_ms" so
// tools/check_bench_determinism.sh's line filter strips them.
//
// --threads=N adds N to the sweep (0 = hardware concurrency).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "obs/json.h"
#include "runtime/batch.h"
#include "setint.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct Workload {
  std::vector<util::SetPair> pairs;
  std::vector<Instance> instances;
};

Workload make_workload(std::uint64_t seed, std::size_t sessions,
                       std::uint64_t universe) {
  Workload w;
  w.pairs.reserve(sessions);
  util::Rng wrng(seed);
  for (std::size_t i = 0; i < sessions; ++i) {
    const std::size_t k = 48 + wrng.below(80);
    w.pairs.push_back(util::random_set_pair(wrng, universe, k, wrng.below(k)));
  }
  w.instances.reserve(sessions);
  for (const util::SetPair& p : w.pairs) w.instances.push_back({p.s, p.t});
  return w;
}

bool identical(const BatchResult& a, const BatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const IntersectResult& x = a.results[i];
    const IntersectResult& y = b.results[i];
    if (x.intersection != y.intersection || x.bits != y.bits ||
        x.rounds != y.rounds || x.verified != y.verified ||
        x.repetitions != y.repetitions) {
      return false;
    }
    if (x.report.ToJson().dump() != y.report.ToJson().dump()) return false;
  }
  return a.metrics.ToJson().dump() == b.metrics.ToJson().dump();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("batch", argc, argv);

  const std::uint64_t universe = std::uint64_t{1} << 22;
  const std::size_t sessions = rep.smoke() ? 64 : 768;
  const Workload w = make_workload(rep.seed_for(0xBA7C4), sessions, universe);
  IntersectOptions options;
  options.universe = universe;
  options.seed = rep.seed();

  std::vector<int> sweep =
      bench::sizes<int>(rep.options(), {1, 2, 4, 8}, {1, 2});
  const int requested = runtime::resolve_threads(rep.threads());
  if (std::find(sweep.begin(), sweep.end(), requested) == sweep.end()) {
    sweep.push_back(requested);
  }

  auto timed_run = [&](int threads) {
    const auto start = std::chrono::steady_clock::now();
    BatchResult out =
        run_batch(options, w.instances, {.threads = threads, .trace = true});
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return std::pair<BatchResult, double>(std::move(out), ms);
  };

  // Warm-up pass so first-touch allocation does not bias the serial
  // baseline, then the measured serial run every other count compares to.
  timed_run(1);
  auto [serial, serial_ms] = timed_run(1);

  bool all_exact = true;
  std::size_t exact_count = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    if (serial.results[i].intersection == w.pairs[i].expected_intersection) {
      ++exact_count;
    }
  }

  {
    auto& table = rep.table(
        "E-batch: wall clock vs threads (" + std::to_string(sessions) +
            " sessions, universe 2^22)",
        {"threads", "threads_used", "identical_to_serial", "wall_ms",
         "speedup (wall_ms ratio)"});
    for (int threads : sweep) {
      BatchResult out;
      double ms = 0.0;
      if (threads == 1) {
        ms = serial_ms;
      } else {
        auto [run, run_ms] = timed_run(threads);
        out = std::move(run);
        ms = run_ms;
      }
      const bool same = threads == 1 || identical(serial, out);
      all_exact &= same;
      table.add_row({bench::fmt_u64(static_cast<std::uint64_t>(threads)),
                     bench::fmt_u64(static_cast<std::uint64_t>(
                         threads == 1 ? serial.threads_used
                                      : out.threads_used)),
                     same ? "YES" : "NO", bench::fmt_double(ms),
                     bench::fmt_double(serial_ms / ms)});
    }
    table.print();
  }

  {
    auto& table = rep.table("E-batch: workload sanity",
                            {"sessions", "exact_results", "hw_concurrency"});
    table.add_row({bench::fmt_u64(sessions), bench::fmt_u64(exact_count),
                   bench::fmt_u64(static_cast<std::uint64_t>(
                       runtime::resolve_threads(0)))});
    table.print();
  }

  obs::Json env = obs::Json::object();
  env["hardware_concurrency"] = runtime::resolve_threads(0);
  env["sessions"] = sessions;
  rep.note("environment", std::move(env));

  // The serial run's merged per-session registry (counters, histograms and
  // the new hdr family) goes into the record wholesale — the robustness
  // block stays all-zero on this clean workload, which is itself a useful
  // pin for bench_compare.
  rep.merge_metrics(serial.metrics);

  std::printf(
      "\nBit-identity across thread counts (results, reports, merged\n"
      "metrics JSON vs the serial run): %s\n",
      all_exact ? "EXACT" : "VIOLATED");
  return rep.finish(all_exact && exact_count == sessions ? 0 : 1);
}
