// Shared infrastructure for the experiment binaries.
//
// Every exp_* binary follows the same contract (docs/OBSERVABILITY.md §
// "bench pipeline"):
//
//   exp_foo [--seed=<u64>] [--json=<path>] [--smoke]
//
// * --seed seeds all workload generation and protocol randomness; two runs
//   with the same seed produce byte-identical JSON except lines mentioning
//   wall_ms — the trailing wall_ms field plus any timing column, whose
//   names must contain "wall_ms" so the line filter in
//   tools/check_bench_determinism.sh strips them.
// * --json writes a schema-versioned machine-readable record of every
//   table the binary printed (plus experiment-specific notes such as phase
//   breakdowns) — the BENCH_<exp>.json perf-trajectory files at the repo
//   root are produced this way by tools/run_benches.sh.
// * --smoke shrinks workloads to seconds-scale so ctest can keep every
//   bench binary from bit-rotting.
//
// Usage inside a binary:
//
//   auto rep = bench::Reporter::FromArgs("tradeoff", argc, argv);
//   auto& t = rep.table("E1a: ...", {"k", "bits"});
//   t.add_row({bench::fmt_u64(k), bench::fmt_u64(bits)});
//   t.print();
//   return rep.finish();
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/channel.h"
#include "simd/dispatch.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::bench {

// Version of the BENCH_*.json schema. Bump when renaming top-level keys or
// changing row encoding; consumers gate on it.
//
// v2 (observability PR): adds "environment" (hardware_threads, compiler,
// build_type, git_sha — so a perf trajectory records what produced it),
// "robustness" (fault./adversary./retry./degraded./limit. counter totals,
// always present) and optional "metrics" (full merged MetricsRegistry) and
// notes.envelope_audit blocks. tools/bench_compare consumes both v1 and
// v2.
//
// v3 (SIMD engine PR): environment gains a "cpu" block — the detected
// feature bits (avx2, sse4_1, popcnt) and the kernel tier the process
// actually dispatched to (environment.cpu.dispatch_tier: "scalar" |
// "sse41" | "avx2", after SETINT_FORCE_SCALAR / SETINT_FORCE_TIER).
// Timing numbers from records with different dispatch_tier values are
// incomparable; tools/bench_compare refuses to diff them even under
// --perf-tol. tools/bench_compare consumes v1 through v3.
inline constexpr int kBenchSchemaVersion = 3;

struct Options {
  std::uint64_t seed = 0x5e71;
  bool smoke = false;
  int threads = 1;        // batch parallelism (setint::run_batch sessions)
  std::string json_path;  // empty = human tables only
  // Hard-fail threshold (percent) for the telemetry-overhead section of
  // exp_cpu: negative = report only. Timing gates stay opt-in because the
  // repo's determinism checks must never depend on a clock.
  double gate_overhead_pct = -1.0;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--seed=", 0) == 0) {
        o.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      } else if (arg.rfind("--json=", 0) == 0) {
        o.json_path = arg.substr(7);
      } else if (arg.rfind("--threads=", 0) == 0) {
        o.threads = static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10));
        if (o.threads < 0) {
          throw std::runtime_error("--threads must be >= 0 (0 = auto)");
        }
      } else if (arg.rfind("--gate-overhead=", 0) == 0) {
        o.gate_overhead_pct = std::strtod(arg.c_str() + 16, nullptr);
      } else if (arg == "--smoke") {
        o.smoke = true;
      } else {
        throw std::runtime_error(
            "unknown flag: " + arg +
            " (expected --seed=<u64> --json=<path> --threads=<n> "
            "--gate-overhead=<pct> --smoke)");
      }
    }
    return o;
  }
};

// Build/host fingerprint stamped into every BENCH record so a perf
// trajectory diff can tell "the code regressed" from "the box changed"
// (the PR-4 batch numbers were recorded on a 1-core container and looked
// like a missing speedup until this block existed).
inline obs::Json environment_json() {
  obs::Json env = obs::Json::object();
  env["hardware_threads"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
#if defined(__VERSION__)
  env["compiler"] = __VERSION__;
#else
  env["compiler"] = "unknown";
#endif
#if defined(SETINT_BUILD_TYPE)
  env["build_type"] = SETINT_BUILD_TYPE;
#else
  env["build_type"] = "unknown";
#endif
#if defined(SETINT_GIT_SHA)
  env["git_sha"] = SETINT_GIT_SHA;
#else
  env["git_sha"] = "unknown";
#endif
  // v3: CPU features + the kernel tier this process dispatches to. Timing
  // columns are only comparable between records with equal dispatch_tier
  // (bench_compare enforces this).
  const simd::CpuFeatures& cpu = simd::detected_features();
  obs::Json cpu_block = obs::Json::object();
  cpu_block["avx2"] = cpu.avx2;
  cpu_block["sse4_1"] = cpu.sse4_1;
  cpu_block["popcnt"] = cpu.popcnt;
  cpu_block["dispatch_tier"] = simd::tier_name(simd::active_tier());
  env["cpu"] = std::move(cpu_block);
  return env;
}

// Picks the full or the smoke-sized variant of a workload parameter list.
template <typename T>
std::vector<T> sizes(const Options& opts, std::vector<T> full,
                     std::vector<T> smoke) {
  return opts.smoke ? std::move(smoke) : std::move(full);
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Prints rows of pre-formatted cells with column alignment and remembers
// them for the JSON record (cells that parse fully as numbers are emitted
// typed).
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(columns), widths_(columns.size()) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      widths_[i] = columns[i].size();
    }
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print() const {
    print_header(title_);
    print_cells(columns_);
    std::size_t total = 0;
    for (std::size_t w : widths_) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_cells(row);
  }

  obs::Json ToJson() const {
    obs::Json section = obs::Json::object();
    section["title"] = title_;
    obs::Json& columns = section["columns"] = obs::Json::array();
    for (const auto& c : columns_) columns.push_back(c);
    obs::Json& rows = section["rows"] = obs::Json::array();
    for (const auto& row : rows_) {
      obs::Json record = obs::Json::object();
      for (std::size_t c = 0; c < row.size() && c < columns_.size(); ++c) {
        record[columns_[c]] = obs::Json::from_cell(row[c]);
      }
      rows.push_back(std::move(record));
    }
    return section;
  }

 private:
  void print_cells(const std::vector<std::string>& cells) const {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths_[c]), cells[c].c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

// Collects every table (and free-form notes) of one experiment run and
// writes the BENCH_<exp>.json record on finish().
class Reporter {
 public:
  Reporter(std::string experiment, Options opts)
      : experiment_(std::move(experiment)),
        opts_(std::move(opts)),
        start_(std::chrono::steady_clock::now()) {}

  // Parses flags and reports usage errors with exit code 2.
  static Reporter FromArgs(std::string experiment, int argc, char** argv) {
    try {
      return Reporter(std::move(experiment), Options::parse(argc, argv));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      std::exit(2);
    }
  }

  const Options& options() const { return opts_; }
  std::uint64_t seed() const { return opts_.seed; }
  bool smoke() const { return opts_.smoke; }
  int threads() const { return opts_.threads; }

  // Workload seed for a named sweep point, decorrelated across (label,
  // a, b) but stable under --seed.
  std::uint64_t seed_for(std::uint64_t a, std::uint64_t b = 0) const {
    return util::mix64(opts_.seed, util::mix64(a, b));
  }

  Table& table(std::string title, std::vector<std::string> columns) {
    tables_.emplace_back(std::move(title), std::move(columns));
    return tables_.back();
  }

  // Attach an experiment-specific JSON payload (phase breakdowns, shape
  // verdicts, ...) under notes.<key>.
  void note(std::string_view key, obs::Json value) {
    notes_[key] = std::move(value);
  }

  // Fold one run's (or one batch's) metric registry into the record's
  // aggregate. The robustness block below is derived from this aggregate,
  // so every experiment that routes its tracers here gets fault./retry./
  // degraded./limit./adversary. counters in its JSON for free.
  void merge_metrics(const obs::MetricsRegistry& metrics) {
    metrics_.merge(metrics);
  }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Writes the JSON record if --json was given. Returns `exit_code` so
  // main() can end with `return rep.finish(ok ? 0 : 1);`.
  int finish(int exit_code = 0) {
    if (opts_.json_path.empty()) return exit_code;
    obs::Json doc = obs::Json::object();
    doc["schema_version"] = kBenchSchemaVersion;
    doc["experiment"] = experiment_;
    doc["seed"] = opts_.seed;
    doc["smoke"] = opts_.smoke;
    doc["exit_code"] = exit_code;
    doc["environment"] = environment_json();
    doc["robustness"] = robustness_json();
    obs::Json& sections = doc["sections"] = obs::Json::array();
    for (const auto& t : tables_) sections.push_back(t.ToJson());
    if (!metrics_.empty()) doc["metrics"] = metrics_.ToJson();
    if (!notes_.is_null()) doc["notes"] = std::move(notes_);
    // Wall clock goes last, alone on its line (pretty-printed), so the
    // determinism check can strip it with a line filter.
    doc["wall_ms"] =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    obs::write_file(opts_.json_path, doc.dump(2));
    std::printf("\n[bench] wrote %s\n", opts_.json_path.c_str());
    return exit_code;
  }

 private:
  // Robustness counters grouped by family prefix, always present (all
  // zeros on a clean run) so bench_compare can diff fault/degradation
  // activity across two trajectories without schema sniffing.
  obs::Json robustness_json() const {
    static constexpr const char* kFamilies[] = {
        "fault", "adversary", "retry",      "degraded", "limit",
        "chaos", "checkpoint", "budget",    "breaker"};
    obs::Json out = obs::Json::object();
    for (const char* family : kFamilies) {
      const std::string prefix = std::string(family) + ".";
      obs::Json& block = out[family] = obs::Json::object();
      std::uint64_t total = 0;
      obs::Json counters = obs::Json::object();
      for (const auto& [name, c] : metrics_.counters()) {
        if (name.rfind(prefix, 0) != 0) continue;
        total += c.value();
        counters[name] = c.value();
      }
      block["total"] = total;
      block["counters"] = std::move(counters);
    }
    return out;
  }

  std::string experiment_;
  Options opts_;
  std::deque<Table> tables_;  // deque: stable references from table()
  obs::MetricsRegistry metrics_;
  obs::Json notes_;
  std::chrono::steady_clock::time_point start_;
};

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_double(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

// Average cost of `run` (which must execute one protocol instance on a
// fresh channel and return its CostStats) over `trials` repetitions.
template <typename RunFn>
sim::CostStats average_cost(int trials, RunFn run) {
  sim::CostStats total;
  for (int t = 0; t < trials; ++t) total += run(t);
  total.bits_total /= static_cast<std::uint64_t>(trials);
  total.bits_from_alice /= static_cast<std::uint64_t>(trials);
  total.bits_from_bob /= static_cast<std::uint64_t>(trials);
  total.messages /= static_cast<std::uint64_t>(trials);
  total.rounds /= static_cast<std::uint64_t>(trials);
  return total;
}

}  // namespace setint::bench
