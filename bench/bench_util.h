// Shared helpers for the experiment binaries: aligned table printing and
// repeated-trial measurement of protocol costs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/channel.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace setint::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Prints rows of pre-formatted cells with column alignment.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : widths_(columns.size()) {
    add_row(std::move(columns));
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print() const {
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths_[c]),
                    rows_[r][c].c_str());
      }
      std::printf("\n");
      if (r == 0) {
        std::size_t total = 0;
        for (std::size_t w : widths_) total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
      }
    }
  }

 private:
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_double(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

// Average cost of `run` (which must execute one protocol instance on a
// fresh channel and return its CostStats) over `trials` repetitions.
template <typename RunFn>
sim::CostStats average_cost(int trials, RunFn run) {
  sim::CostStats total;
  for (int t = 0; t < trials; ++t) total += run(t);
  total.bits_total /= static_cast<std::uint64_t>(trials);
  total.bits_from_alice /= static_cast<std::uint64_t>(trials);
  total.bits_from_bob /= static_cast<std::uint64_t>(trials);
  total.messages /= static_cast<std::uint64_t>(trials);
  total.rounds /= static_cast<std::uint64_t>(trials);
  return total;
}

}  // namespace setint::bench
