// E14 — distribution-free guarantees on realistic database workloads.
//
// The theorems make no assumption on the input distribution: the bucket
// hash is the protocol's own (shared) randomness. This experiment runs
// the protocol zoo on uniform, Zipfian (web/database popularity skew) and
// clustered (auto-increment shard ranges) key sets and checks that
// communication and accuracy match the uniform baseline.
#include <cstdio>

#include "bench_util.h"
#include "core/deterministic_exchange.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"
#include "util/workloads.h"

namespace {

using namespace setint;

util::SetPair make_pair(util::Rng& rng, const std::string& family,
                        std::uint64_t universe, std::size_t k) {
  util::SkewedPairOptions options;
  options.universe = universe;
  options.k = k;
  options.shared = k / 2;
  if (family == "zipf-0.8") options.zipf_theta = 0.8;
  if (family == "zipf-1.2") options.zipf_theta = 1.2;
  if (family == "clustered-4") options.clusters = 4;
  if (family == "clustered-64") options.clusters = 64;
  return util::skewed_set_pair(rng, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("skew", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 30;
  const std::size_t k = rep.smoke() ? 1024 : 8192;

  auto& table = rep.table(
      "E14: workload-skew robustness, k = " + std::to_string(k) +
          ", 50% overlap",
      {"workload", "tree bits/elem", "tree rounds", "tree exact",
       "naive bits/elem"});
  for (const std::string family :
       {"uniform", "zipf-0.8", "zipf-1.2", "clustered-4", "clustered-64"}) {
    util::Rng rng(
        rep.seed_for(static_cast<std::uint64_t>(family.size()) * 1000 + 17));
    const util::SetPair p = make_pair(rng, family, universe, k);

    sim::SharedRandomness shared(rep.seed_for(7));
    sim::Channel tree_ch;
    const auto out = core::verification_tree_intersection(
        tree_ch, shared, rep.seed(), universe, p.s, p.t, {});
    const bool exact = out.alice == p.expected_intersection &&
                       out.bob == p.expected_intersection;

    sim::Channel naive_ch;
    core::deterministic_exchange(naive_ch, universe, p.s, p.t, false);

    table.add_row(
        {family,
         bench::fmt_double(static_cast<double>(tree_ch.cost().bits_total) /
                           static_cast<double>(k)),
         bench::fmt_u64(tree_ch.cost().rounds), exact ? "yes" : "NO",
         bench::fmt_double(static_cast<double>(naive_ch.cost().bits_total) /
                           static_cast<double>(k))});
  }
  table.print();
  std::printf(
      "\nShape check: both columns are flat across workload families.\n"
      "For the tree this is the point — the guarantees are\n"
      "distribution-free because the bucket hash is protocol randomness,\n"
      "not adversary-visible structure. For the naive baseline it shows\n"
      "the Rice parameterization is already near the uniform-set entropy,\n"
      "which no key-distribution skew can reduce below log2 C(n, k)/k.\n");
  return rep.finish();
}
