// E15 — the planner's decision surface: which protocol wins at each
// (k, n) cell, and how close the cost models track measurements.
#include <cstdio>

#include "bench_util.h"
#include "core/planner.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("planner", argc, argv);

  {
    auto& table = rep.table(
        "E15a: planner choice per (k, log2 n) cell (round budget unlimited)",
        {"k \\ log2(n)", "16", "24", "32", "48", "62"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {64, 1024, 16384, 262144}, {64, 1024});
    for (std::size_t k : ks) {
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (unsigned log_n : {16u, 24u, 32u, 48u, 62u}) {
        if ((std::uint64_t{1} << log_n) < 2 * k) {
          row.push_back("-");
          continue;
        }
        core::PlannerQuery query;
        query.universe = std::uint64_t{1} << log_n;
        query.k = k;
        row.push_back(core::choose_plan(query).description);
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "\nShape check: deterministic exchange wins the small-universe\n"
        "corner, the O(k)-bit randomized protocols take over as n/k\n"
        "grows — the paper's tradeoff map as a planner decision surface.\n");
  }

  {
    const std::size_t k = rep.smoke() ? 1024 : 4096;
    auto& table = rep.table("E15b: model accuracy (estimate vs measured, k = " +
                                std::to_string(k) + ", n = 2^32)",
                            {"plan", "estimated bits", "measured bits",
                             "ratio", "est rounds"});
    core::PlannerQuery query;
    query.universe = std::uint64_t{1} << 32;
    query.k = k;
    util::Rng wrng(rep.seed_for(1));
    const util::SetPair p =
        util::random_set_pair(wrng, query.universe, query.k, query.k / 2);
    for (const core::Plan& plan : core::enumerate_plans(query)) {
      const auto proto = core::instantiate(plan);
      const core::RunResult r =
          proto->run(rep.seed_for(9), query.universe, p.s, p.t);
      table.add_row(
          {plan.description, bench::fmt_double(plan.estimated_bits, 0),
           bench::fmt_u64(r.cost.bits_total),
           bench::fmt_double(plan.estimated_bits /
                             static_cast<double>(r.cost.bits_total)),
           bench::fmt_u64(plan.estimated_rounds)});
    }
    table.print();
  }

  {
    auto& table = rep.table("E15c: round-budget sensitivity (k = 4096, "
                            "n = 2^48)",
                            {"round budget", "chosen plan",
                             "estimated bits/k"});
    for (std::uint64_t budget : {2u, 6u, 12u, 18u, 24u, 0u}) {
      core::PlannerQuery query;
      query.universe = std::uint64_t{1} << 48;
      query.k = 4096;
      query.round_budget = budget;
      const core::Plan plan = core::choose_plan(query);
      table.add_row({budget == 0 ? "unlimited" : bench::fmt_u64(budget),
                     plan.description,
                     bench::fmt_double(plan.estimated_bits / 4096.0)});
    }
    table.print();
    std::printf(
        "\nShape check: tighter round budgets force costlier protocols —\n"
        "the communication/round tradeoff of Theorem 1.1 surfaced as an\n"
        "operational knob.\n");
  }
  return rep.finish();
}
