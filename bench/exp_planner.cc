// E15 — the planner's decision surface: which protocol wins at each
// (k, n) cell, and how close the cost models track measurements.
#include <cstdio>

#include "bench_util.h"
#include "core/planner.h"
#include "util/rng.h"
#include "util/set_util.h"

int main() {
  using namespace setint;

  bench::print_header(
      "E15a: planner choice per (k, log2 n) cell (round budget unlimited)");
  {
    bench::Table table({"k \\ log2(n)", "16", "24", "32", "48", "62"});
    for (std::size_t k : {64u, 1024u, 16384u, 262144u}) {
      std::vector<std::string> row{bench::fmt_u64(k)};
      for (unsigned log_n : {16u, 24u, 32u, 48u, 62u}) {
        if ((std::uint64_t{1} << log_n) < 2 * k) {
          row.push_back("-");
          continue;
        }
        core::PlannerQuery query;
        query.universe = std::uint64_t{1} << log_n;
        query.k = k;
        row.push_back(core::choose_plan(query).description);
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "\nShape check: deterministic exchange wins the small-universe\n"
        "corner, the O(k)-bit randomized protocols take over as n/k\n"
        "grows — the paper's tradeoff map as a planner decision surface.\n");
  }

  bench::print_header("E15b: model accuracy (estimate vs measured, k = 4096, "
                      "n = 2^32)");
  {
    core::PlannerQuery query;
    query.universe = std::uint64_t{1} << 32;
    query.k = 4096;
    util::Rng wrng(1);
    const util::SetPair p =
        util::random_set_pair(wrng, query.universe, query.k, query.k / 2);
    bench::Table table(
        {"plan", "estimated bits", "measured bits", "ratio", "est rounds"});
    for (const core::Plan& plan : core::enumerate_plans(query)) {
      const auto proto = core::instantiate(plan);
      const core::RunResult r = proto->run(9, query.universe, p.s, p.t);
      table.add_row(
          {plan.description, bench::fmt_double(plan.estimated_bits, 0),
           bench::fmt_u64(r.cost.bits_total),
           bench::fmt_double(plan.estimated_bits /
                             static_cast<double>(r.cost.bits_total)),
           bench::fmt_u64(plan.estimated_rounds)});
    }
    table.print();
  }

  bench::print_header("E15c: round-budget sensitivity (k = 4096, n = 2^48)");
  {
    bench::Table table({"round budget", "chosen plan", "estimated bits/k"});
    for (std::uint64_t budget : {2u, 6u, 12u, 18u, 24u, 0u}) {
      core::PlannerQuery query;
      query.universe = std::uint64_t{1} << 48;
      query.k = 4096;
      query.round_budget = budget;
      const core::Plan plan = core::choose_plan(query);
      table.add_row({budget == 0 ? "unlimited" : bench::fmt_u64(budget),
                     plan.description,
                     bench::fmt_double(plan.estimated_bits / 4096.0)});
    }
    table.print();
    std::printf(
        "\nShape check: tighter round budgets force costlier protocols —\n"
        "the communication/round tradeoff of Theorem 1.1 surfaced as an\n"
        "operational knob.\n");
  }
  return 0;
}
