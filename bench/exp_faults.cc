// F — robustness under an adversarial transport (docs/ROBUSTNESS.md).
//
// Sweeps fault rates against the certificate-driven retry layer and pins
// the two safety claims end-to-end:
//   * at flip rates <= 1e-3/bit the facade still returns a verified exact
//     answer in >= 99% of runs (the acceptance bar for this layer), and
//   * at ANY rate there is never an unflagged wrong answer — every
//     non-degraded result is exact, every degraded result is a superset.
// The cost columns show what robustness charges: integrity framing,
// duplicate bandwidth, backoff/delay rounds, and extra attempts.
#include <cstdio>

#include "bench_util.h"
#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct TwoPartyTally {
  int trials = 0;
  int verified = 0;
  int degraded = 0;
  int unflagged_wrong = 0;      // must stay 0: the headline safety claim
  int superset_violations = 0;  // must stay 0: degraded answers are supersets
  std::uint64_t total_bits = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t total_attempts = 0;
};

// Runs `trials` seeded facade calls, each with a fresh FaultPlan so the
// fault stream is independent per trial but fully determined by the
// reporter seed. Each trial carries its own tracer; the merged fault./
// retry./degraded./limit. counters land in the reporter's robustness
// block (schema v2).
TwoPartyTally run_two_party(bench::Reporter& rep, std::uint64_t salt,
                            int trials, sim::FaultSpec spec,
                            const core::RetryPolicy& retry,
                            std::uint64_t universe, std::size_t k) {
  TwoPartyTally tally;
  tally.trials = trials;
  util::Rng wrng(rep.seed_for(salt, 0xA0));
  for (int t = 0; t < trials; ++t) {
    const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 4);
    spec.seed = rep.seed_for(salt, 0xFA00 + static_cast<std::uint64_t>(t));
    sim::FaultPlan plan(spec);
    obs::Tracer tracer;
    IntersectOptions options;
    options.universe = universe;
    options.seed = rep.seed_for(salt, 0x5E00 + static_cast<std::uint64_t>(t));
    options.fault_plan = &plan;
    options.retry = retry;
    options.tracer = &tracer;
    const IntersectResult result = intersect(pair.s, pair.t, options);
    rep.merge_metrics(tracer.metrics());
    if (result.verified) tally.verified += 1;
    if (result.degraded) tally.degraded += 1;
    if (!result.degraded &&
        result.intersection != pair.expected_intersection) {
      tally.unflagged_wrong += 1;
    }
    if (!util::is_subset(pair.expected_intersection, result.intersection)) {
      tally.superset_violations += 1;
    }
    tally.total_bits += result.bits;
    tally.total_rounds += result.rounds;
    tally.total_attempts += result.repetitions;
  }
  return tally;
}

std::string pct(int part, int whole) {
  return bench::fmt_double(100.0 * part / std::max(1, whole), 1);
}

void add_tally_row(bench::Table& table, std::vector<std::string> prefix,
                   const TwoPartyTally& c) {
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.trials)));
  prefix.push_back(pct(c.verified, c.trials));
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.degraded)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.unflagged_wrong)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.superset_violations)));
  prefix.push_back(bench::fmt_u64(
      c.total_bits / static_cast<std::uint64_t>(std::max(1, c.trials))));
  prefix.push_back(bench::fmt_u64(
      c.total_rounds / static_cast<std::uint64_t>(std::max(1, c.trials))));
  prefix.push_back(bench::fmt_double(
      static_cast<double>(c.total_attempts) / std::max(1, c.trials), 2));
  table.add_row(std::move(prefix));
}

const std::vector<std::string> kTallyColumns = {
    "trials",         "verified %",         "degraded",
    "unflagged wrong", "superset violations", "avg bits",
    "avg rounds",     "avg attempts"};

std::vector<std::string> with_prefix(std::vector<std::string> prefix) {
  std::vector<std::string> columns = std::move(prefix);
  columns.insert(columns.end(), kTallyColumns.begin(), kTallyColumns.end());
  return columns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("faults", argc, argv);

  const std::uint64_t universe = std::uint64_t{1} << 16;
  const std::size_t k = 32;
  int violations = 0;
  bool low_rate_bar_met = true;

  // F1: bit-flip rate sweep. The acceptance bar lives at 1e-3.
  {
    auto& table = rep.table("F1: flip rate vs success  (k=32, n=2^16)",
                            with_prefix({"flip/bit"}));
    const std::vector<double> rates = bench::sizes<double>(
        rep.options(), {0.0, 1e-4, 5e-4, 1e-3, 2e-3, 5e-3, 2e-2},
        {0.0, 1e-3, 2e-2});
    const int trials = rep.smoke() ? 30 : 500;
    for (double rate : rates) {
      sim::FaultSpec spec;
      spec.flip_per_bit = rate;
      const TwoPartyTally c =
          run_two_party(rep, static_cast<std::uint64_t>(rate * 1e6) + 1,
                        trials, spec, {}, universe, k);
      violations += c.unflagged_wrong + c.superset_violations;
      if (rate <= 1e-3 && c.verified * 100 < c.trials * 99) {
        low_rate_bar_met = false;
      }
      add_tally_row(table, {bench::fmt_double(rate, 4)}, c);
    }
    table.print();
    std::printf("\n>= 99%% verified at flip rates <= 1e-3: %s\n",
                low_rate_bar_met ? "YES" : "NO");
  }

  // F2: one fault mode at a time, plus everything at once.
  {
    auto& table = rep.table("F2: fault modes at fixed rates  (k=32, n=2^16)",
                            with_prefix({"mode"}));
    struct Mode {
      const char* name;
      sim::FaultSpec spec;
    };
    std::vector<Mode> modes;
    {
      Mode m{"drop 10%", {}};
      m.spec.drop_prob = 0.1;
      modes.push_back(m);
      m = {"truncate 10%", {}};
      m.spec.truncate_prob = 0.1;
      modes.push_back(m);
      m = {"duplicate 20%", {}};
      m.spec.duplicate_prob = 0.2;
      modes.push_back(m);
      m = {"delay 20% x2", {}};
      m.spec.delay_prob = 0.2;
      m.spec.delay_rounds = 2;
      modes.push_back(m);
      m = {"mixed", {}};
      m.spec.flip_per_bit = 1e-3;
      m.spec.drop_prob = 0.05;
      m.spec.truncate_prob = 0.05;
      m.spec.duplicate_prob = 0.1;
      m.spec.delay_prob = 0.1;
      m.spec.delay_rounds = 2;
      modes.push_back(m);
    }
    const int trials = rep.smoke() ? 20 : 200;
    std::uint64_t salt = 0x200;
    for (const Mode& mode : modes) {
      const TwoPartyTally c =
          run_two_party(rep, salt++, trials, mode.spec, {}, universe, k);
      violations += c.unflagged_wrong + c.superset_violations;
      add_tally_row(table, {mode.name}, c);
    }
    table.print();
  }

  // F3: retry budget at a bruising flip rate — shows degradation taking
  // over as max_attempts shrinks, without ever compromising safety.
  {
    auto& table = rep.table(
        "F3: retry budget at flip/bit = 2e-3  (k=32, n=2^16)",
        with_prefix({"max attempts"}));
    const std::vector<std::uint64_t> budgets = bench::sizes<std::uint64_t>(
        rep.options(), {1, 2, 4, 8, 16, 24}, {1, 4, 24});
    const int trials = rep.smoke() ? 20 : 200;
    for (std::uint64_t budget : budgets) {
      sim::FaultSpec spec;
      spec.flip_per_bit = 2e-3;
      core::RetryPolicy retry;
      retry.max_attempts = budget;
      const TwoPartyTally c = run_two_party(rep, 0x300 + budget, trials, spec,
                                            retry, universe, k);
      violations += c.unflagged_wrong + c.superset_violations;
      add_tally_row(table, {bench::fmt_u64(budget)}, c);
    }
    table.print();
  }

  // F4: multiparty topologies sharing one network-wide fault stream.
  {
    auto& table = rep.table(
        "F4: multiparty under mixed faults  (8 players, k=24, n=2^14)",
        {"topology", "trials", "exact", "degraded runs",
         "superset violations", "avg total bits", "avg degraded pairs"});
    const int trials = rep.smoke() ? 5 : 40;
    const std::uint64_t mp_universe = std::uint64_t{1} << 14;
    for (const bool tournament : {false, true}) {
      int exact = 0;
      int degraded_runs = 0;
      int mp_violations = 0;
      std::uint64_t total_bits = 0;
      std::uint64_t degraded_pairs = 0;
      util::Rng wrng(rep.seed_for(0x400, tournament ? 2 : 1));
      for (int t = 0; t < trials; ++t) {
        const util::MultiSetInstance instance = util::random_multi_sets(
            wrng, mp_universe, /*players=*/8, /*k=*/24, /*shared=*/6);
        sim::FaultSpec spec;
        spec.flip_per_bit = 1e-3;
        spec.drop_prob = 0.02;
        spec.seed = rep.seed_for(0x410 + static_cast<std::uint64_t>(t),
                                 tournament ? 2 : 1);
        sim::FaultPlan plan(spec);
        obs::Tracer tracer;
        sim::Network network(instance.sets.size());
        network.set_tracer(&tracer);
        network.set_fault_plan(&plan);
        sim::SharedRandomness shared(
            rep.seed_for(0x420 + static_cast<std::uint64_t>(t),
                         tournament ? 2 : 1));
        multiparty::MultipartyParams params;
        const multiparty::MultipartyResult result =
            tournament ? multiparty::tournament_intersection(
                             network, shared, mp_universe, instance.sets,
                             params)
                       : multiparty::coordinator_intersection(
                             network, shared, mp_universe, instance.sets,
                             params);
        if (!util::is_subset(instance.expected_intersection,
                             result.intersection)) {
          mp_violations += 1;
        }
        if (!result.degraded &&
            result.intersection != instance.expected_intersection) {
          mp_violations += 1;  // unflagged wrong multiparty answer
        }
        if (result.intersection == instance.expected_intersection) exact += 1;
        if (result.degraded) degraded_runs += 1;
        total_bits += network.total_bits();
        degraded_pairs += result.degraded_pairs;
        rep.merge_metrics(tracer.metrics());
      }
      violations += mp_violations;
      table.add_row(
          {tournament ? "tournament" : "coordinator",
           bench::fmt_u64(static_cast<std::uint64_t>(trials)),
           bench::fmt_u64(static_cast<std::uint64_t>(exact)),
           bench::fmt_u64(static_cast<std::uint64_t>(degraded_runs)),
           bench::fmt_u64(static_cast<std::uint64_t>(mp_violations)),
           bench::fmt_u64(total_bits / static_cast<std::uint64_t>(trials)),
           bench::fmt_double(static_cast<double>(degraded_pairs) / trials,
                             2)});
    }
    table.print();
  }

  std::printf("\nSafety held in every run (no unflagged wrong answers, "
              "no superset violations): %s\n",
              violations == 0 ? "YES" : "NO");
  rep.note("safety_violations", violations);
  rep.note("low_rate_bar_met", low_rate_bar_met);
  // Safety (never an unflagged wrong answer) is deterministic and gates every
  // run. The >= 99% bar is a statistical claim about 500-trial sweeps; at
  // smoke size (30 trials) one unlucky retry exhaustion would flip the exit
  // code, so it only gates full runs.
  const bool ok = violations == 0 && (rep.smoke() || low_rate_bar_met);
  return rep.finish(ok ? 0 : 1);
}
