// E8 — robustness to large intersections: the paper's motivating hard
// case. Disjointness protocols (Hastad-Wigderson) exploit that common
// elements are few or absent; INT_k must pay the same O(k) regardless of
// |S cap T|. Expected shape: tree bits/element ~flat across the overlap
// sweep, while the HW baseline (answering only the YES/NO question)
// degrades as overlap grows — its halving argument stalls on common
// elements.
#include <cstdio>

#include "baselines/hw_disjointness.h"
#include "bench_util.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("intersection_size", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 32;

  auto& table = rep.table(
      "E8: bits/element vs intersection fraction alpha  (tree: full "
      "intersection; HW: disjointness decision only)",
      {"k", "alpha", "tree bits/elem", "tree exact", "HW bits/elem",
       "HW phases", "HW answer"});
  const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
      rep.options(), {1024, 4096, 16384}, {1024});
  for (std::size_t k : ks) {
    for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      util::Rng wrng(rep.seed_for(k, static_cast<std::uint64_t>(alpha * 100)));
      const auto shared_count =
          static_cast<std::size_t>(alpha * static_cast<double>(k));
      const util::SetPair p =
          util::random_set_pair(wrng, universe, k, shared_count);

      sim::SharedRandomness shared(rep.seed_for(k * 31));
      sim::Channel tree_ch;
      const auto out = core::verification_tree_intersection(
          tree_ch, shared, rep.seed(), universe, p.s, p.t, {});
      const bool exact = out.alice == p.expected_intersection;

      sim::Channel hw_ch;
      const auto hw = baselines::hw_disjointness(hw_ch, shared,
                                                 rep.seed() + 1, universe,
                                                 p.s, p.t);

      table.add_row(
          {bench::fmt_u64(k), bench::fmt_double(alpha, 2),
           bench::fmt_double(static_cast<double>(tree_ch.cost().bits_total) /
                             static_cast<double>(k)),
           exact ? "yes" : "NO",
           bench::fmt_double(static_cast<double>(hw_ch.cost().bits_total) /
                             static_cast<double>(k)),
           bench::fmt_u64(hw.phases),
           hw.disjoint ? "disjoint" : "intersecting"});
    }
  }
  table.print();
  std::printf(
      "\nShape check: the tree column is flat in alpha — the protocol's\n"
      "cost does not depend on how large the intersection is, which is\n"
      "precisely what separates INT_k techniques from disjointness\n"
      "techniques (HW stalls: common elements never halve away, so its\n"
      "phase loop runs to its cap once alpha > 0).\n");
  return rep.finish();
}
