// G — Byzantine-peer hardening (docs/ROBUSTNESS.md, "Threat model").
//
// Sweeps every attack class against the facade with resource limits on
// and off, and pins the Byzantine safety contract end-to-end:
//   * the honest side never crashes or hangs — every run terminates and
//     no exception escapes the retry layer;
//   * its output is ALWAYS a subset of its own input, whatever the peer
//     sends (the one guarantee a lying peer leaves standing);
//   * runs the adversary left untouched (frames_crafted == 0) are exact;
//   * the resource-limit guard is load-bearing: with limits OFF the
//     inflated-length attack demonstrably materializes far more decoded
//     items than the max_decoded_items cap allows, and with limits ON the
//     identical frame is refused with ResourceLimitError.
// Any violated claim makes the binary exit non-zero.
#include <cstdio>

#include "bench_util.h"
#include "core/resource_limits.h"
#include "multiparty/coordinator.h"
#include "multiparty/tournament.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/adversary.h"
#include "sim/channel.h"
#include "sim/network.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct AdvTally {
  int trials = 0;
  int degraded = 0;
  int verified = 0;
  int clean_runs = 0;        // adversary crafted nothing (stealth misses)
  int escapes = 0;           // exceptions past the retry layer: must stay 0
  int subset_violations = 0; // output not a subset of own input: must stay 0
  int unflagged_wrong = 0;   // crafted-free run wrong vs oracle: must stay 0
  std::uint64_t total_bits = 0;
  std::uint64_t total_attempts = 0;
  std::uint64_t frames_crafted = 0;
};

AdvTally run_attack(bench::Reporter& rep, std::uint64_t salt,
                    int trials, sim::AttackClass attack, double attack_prob,
                    bool limits_on, std::uint64_t universe, std::size_t k) {
  AdvTally tally;
  tally.trials = trials;
  util::Rng wrng(rep.seed_for(salt, 0xA0));
  for (int t = 0; t < trials; ++t) {
    const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 4);
    sim::AdversarySpec spec;
    spec.party = sim::PartyId::kBob;
    spec.attack = attack;
    spec.attack_prob = attack_prob;
    spec.frame_bits = std::uint64_t{1} << 14;
    spec.lie_universe = universe;
    spec.seed = rep.seed_for(salt, 0xAD00 + static_cast<std::uint64_t>(t));
    sim::Adversary adversary(spec);

    obs::Tracer tracer;
    IntersectOptions options;
    options.universe = universe;
    options.seed = rep.seed_for(salt, 0x5E00 + static_cast<std::uint64_t>(t));
    options.adversary = &adversary;
    options.tracer = &tracer;
    if (limits_on) {
      options.limits = core::ResourceLimits::for_workload(universe, k);
    }
    options.retry.max_attempts = 6;
    options.retry.degraded_attempts = 2;

    IntersectResult result;
    try {
      result = intersect(pair.s, pair.t, options);
    } catch (const std::exception&) {
      tally.escapes += 1;
      rep.merge_metrics(tracer.metrics());
      continue;
    }
    rep.merge_metrics(tracer.metrics());
    if (result.verified) tally.verified += 1;
    if (result.degraded) tally.degraded += 1;
    if (!util::is_subset(result.intersection, pair.s)) {
      tally.subset_violations += 1;
    }
    if (adversary.stats().frames_crafted == 0) {
      tally.clean_runs += 1;
      if (result.intersection != pair.expected_intersection) {
        tally.unflagged_wrong += 1;
      }
    }
    tally.total_bits += result.bits;
    tally.total_attempts += result.repetitions;
    tally.frames_crafted += adversary.stats().frames_crafted;
  }
  return tally;
}

std::string pct(int part, int whole) {
  return bench::fmt_double(100.0 * part / std::max(1, whole), 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("adversary", argc, argv);

  const std::uint64_t universe = std::uint64_t{1} << 14;
  const std::size_t k = 32;
  int violations = 0;

  static constexpr struct {
    sim::AttackClass attack;
    const char* name;
  } kClasses[] = {
      {sim::AttackClass::kInflatedLength, "inflated-length"},
      {sim::AttackClass::kUnaryBomb, "unary-bomb"},
      {sim::AttackClass::kRandomGarbage, "random-garbage"},
      {sim::AttackClass::kReplay, "replay"},
      {sim::AttackClass::kTruncate, "truncate"},
      {sim::AttackClass::kSemanticLie, "semantic-lie"},
      {sim::AttackClass::kMixed, "mixed"},
  };

  // G1: every attack class, resource limits off vs on. Safety columns
  // must read zero in every row; the cost columns show what surviving a
  // liar costs (burned attempts, degraded answers).
  {
    auto& table = rep.table(
        "G1: attack class vs defenses  (k=32, n=2^14, attack prob 0.75)",
        {"attack", "limits", "trials", "verified %", "degraded", "escapes",
         "subset violations", "unflagged wrong", "avg bits", "avg attempts",
         "crafted frames"});
    const int trials = rep.smoke() ? 10 : 120;
    std::uint64_t salt = 0x100;
    for (const auto& cls : kClasses) {
      for (const bool limits_on : {false, true}) {
        const AdvTally c = run_attack(rep, salt++, trials, cls.attack,
                                      /*attack_prob=*/0.75, limits_on,
                                      universe, k);
        violations += c.escapes + c.subset_violations + c.unflagged_wrong;
        table.add_row(
            {cls.name, limits_on ? "on" : "off",
             bench::fmt_u64(static_cast<std::uint64_t>(c.trials)),
             pct(c.verified, c.trials),
             bench::fmt_u64(static_cast<std::uint64_t>(c.degraded)),
             bench::fmt_u64(static_cast<std::uint64_t>(c.escapes)),
             bench::fmt_u64(static_cast<std::uint64_t>(c.subset_violations)),
             bench::fmt_u64(static_cast<std::uint64_t>(c.unflagged_wrong)),
             bench::fmt_u64(c.total_bits /
                            static_cast<std::uint64_t>(std::max(1, c.trials))),
             bench::fmt_double(
                 static_cast<double>(c.total_attempts) /
                     std::max(1, c.trials), 2),
             bench::fmt_u64(c.frames_crafted)});
      }
    }
    table.print();
  }

  // G2: the guard is load-bearing. One crafted inflated-length frame,
  // decoded twice: without limits the honest decoder materializes every
  // claimed item (orders of magnitude past the cap); with limits the same
  // frame dies in the items budget before the allocation.
  bool guard_demo_ok = false;
  std::uint64_t items_without_limits = 0;
  {
    const core::ResourceLimits limits =
        core::ResourceLimits::for_workload(universe, k);
    sim::AdversarySpec spec;
    spec.party = sim::PartyId::kBob;
    spec.attack = sim::AttackClass::kInflatedLength;
    spec.attack_prob = 1.0;
    spec.frame_bits = std::uint64_t{1} << 16;
    spec.seed = rep.seed_for(0x200);

    util::BitBuffer honest;
    util::append_set(honest, util::Set{1, 2, 3});

    {
      sim::Adversary adversary(spec);
      sim::Channel channel;
      channel.set_adversary(&adversary);
      const util::BitBuffer delivered =
          channel.send(sim::PartyId::kBob, honest);
      util::BitReader reader = channel.reader(delivered);
      items_without_limits = util::read_set(reader).size();
    }
    bool limit_fired = false;
    {
      sim::Adversary adversary(spec);
      sim::Channel channel;
      channel.set_adversary(&adversary);
      channel.set_limits(&limits);
      const util::BitBuffer delivered =
          channel.send(sim::PartyId::kBob, honest);
      util::BitReader reader = channel.reader(delivered);
      try {
        (void)util::read_set(reader);
      } catch (const core::ResourceLimitError&) {
        limit_fired = true;
      }
    }
    guard_demo_ok =
        items_without_limits > limits.max_decoded_items && limit_fired;

    auto& table = rep.table(
        "G2: inflated-length frame vs max_decoded_items "
        "(honest frame: 3 elements)",
        {"limits", "cap (items)", "decoded items", "outcome"});
    table.add_row({"off", bench::fmt_u64(limits.max_decoded_items),
                   bench::fmt_u64(items_without_limits),
                   "materialized in full"});
    table.add_row({"on", bench::fmt_u64(limits.max_decoded_items), "-",
                   limit_fired ? "ResourceLimitError" : "NOT CAUGHT"});
    table.print();
    std::printf("\nguard load-bearing (blow-past without limits, refusal "
                "with): %s\n",
                guard_demo_ok ? "YES" : "NO");
  }

  // G3: one Byzantine player among eight, both multiparty topologies.
  // Coordinator invariant: an honest root keeps the answer inside every
  // honest player's set. Tournament invariant: the liar's uncertified
  // match is skipped, so the true intersection is never lost (superset)
  // and the root chain keeps the answer inside player 0's set.
  {
    auto& table = rep.table(
        "G3: one Byzantine player of 8  (k=24, n=2^14, mixed attack)",
        {"topology", "trials", "degraded runs", "avg degraded pairs",
         "invariant violations", "avg total bits"});
    const int trials = rep.smoke() ? 5 : 40;
    const std::size_t byzantine = 3;
    for (const bool tournament : {false, true}) {
      int degraded_runs = 0;
      int mp_violations = 0;
      std::uint64_t degraded_pairs = 0;
      std::uint64_t total_bits = 0;
      util::Rng wrng(rep.seed_for(0x300, tournament ? 2 : 1));
      for (int t = 0; t < trials; ++t) {
        const util::MultiSetInstance instance = util::random_multi_sets(
            wrng, universe, /*players=*/8, /*k=*/24, /*shared=*/6);
        sim::AdversarySpec spec;
        spec.attack = sim::AttackClass::kMixed;
        spec.attack_prob = 1.0;
        spec.frame_bits = std::uint64_t{1} << 13;
        spec.lie_universe = universe;
        spec.seed = rep.seed_for(0x310 + static_cast<std::uint64_t>(t),
                                 tournament ? 2 : 1);
        sim::Adversary adversary(spec);
        obs::Tracer tracer;
        sim::Network network(instance.sets.size());
        network.set_tracer(&tracer);
        sim::SharedRandomness shared(
            rep.seed_for(0x320 + static_cast<std::uint64_t>(t),
                         tournament ? 2 : 1));
        multiparty::MultipartyParams params;
        params.retry.max_attempts = 6;
        params.retry.degraded_attempts = 2;
        params.adversary = &adversary;
        params.byzantine_player = byzantine;
        params.limits = core::ResourceLimits::for_workload(universe, 24);
        multiparty::MultipartyResult result;
        try {
          result = tournament
                       ? multiparty::tournament_intersection(
                             network, shared, universe, instance.sets, params)
                       : multiparty::coordinator_intersection(
                             network, shared, universe, instance.sets, params);
        } catch (const std::exception&) {
          mp_violations += 1;
          rep.merge_metrics(tracer.metrics());
          continue;
        }
        rep.merge_metrics(tracer.metrics());
        if (tournament) {
          if (!util::is_subset(instance.expected_intersection,
                               result.intersection) ||
              !util::is_subset(result.intersection, instance.sets[0])) {
            mp_violations += 1;
          }
        } else {
          util::Set honest = instance.sets[0];
          for (std::size_t i = 1; i < instance.sets.size(); ++i) {
            if (i == byzantine) continue;
            honest = util::set_intersection(honest, instance.sets[i]);
          }
          if (!util::is_subset(result.intersection, honest)) {
            mp_violations += 1;
          }
        }
        if (result.degraded) degraded_runs += 1;
        degraded_pairs += result.degraded_pairs;
        total_bits += network.total_bits();
      }
      violations += mp_violations;
      table.add_row(
          {tournament ? "tournament" : "coordinator",
           bench::fmt_u64(static_cast<std::uint64_t>(trials)),
           bench::fmt_u64(static_cast<std::uint64_t>(degraded_runs)),
           bench::fmt_double(static_cast<double>(degraded_pairs) / trials, 2),
           bench::fmt_u64(static_cast<std::uint64_t>(mp_violations)),
           bench::fmt_u64(total_bits /
                          static_cast<std::uint64_t>(std::max(1, trials)))});
    }
    table.print();
  }

  std::printf("\nByzantine safety held in every run (no escapes, no "
              "non-subset outputs, no unflagged wrong answers): %s\n",
              violations == 0 ? "YES" : "NO");
  rep.note("safety_violations", violations);
  rep.note("guard_demo_ok", guard_demo_ok);
  rep.note("items_decoded_without_limits", items_without_limits);
  const bool ok = violations == 0 && guard_demo_ok;
  return rep.finish(ok ? 0 : 1);
}
