// E12 — ablations of the verification tree's design choices:
//   (a) bucket count: the paper hashes into exactly k buckets; fewer
//       buckets mean bigger Basic-Intersection instances, more buckets
//       mean more equality tests;
//   (b) equality-bit schedule (the 4 log^(r-i) k constant): fewer bits =
//       cheaper verification but more undetected failures;
//   (c) Basic-Intersection hash range: smaller ranges = cheaper exchanges
//       but more re-runs.
// Each knob is swept with accuracy measured alongside cost, showing why
// the paper's parameterization is the sweet spot.
#include <cstdio>

#include "bench_util.h"
#include "core/toy_protocol.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

struct Outcome {
  double bits_per_element = 0;
  int inexact = 0;
  std::uint64_t reruns = 0;
};

Outcome sweep(std::size_t k, const core::VerificationTreeParams& params,
              int trials, std::uint64_t salt) {
  Outcome outcome;
  util::Rng wrng(salt);
  std::uint64_t total_bits = 0;
  for (int t = 0; t < trials; ++t) {
    const util::SetPair p =
        util::random_set_pair(wrng, std::uint64_t{1} << 30, k, k / 2);
    sim::SharedRandomness shared(salt * 100 + static_cast<std::uint64_t>(t));
    sim::Channel ch;
    core::VerificationTreeDiag diag;
    const auto out = core::verification_tree_intersection(
        ch, shared, static_cast<std::uint64_t>(t), std::uint64_t{1} << 30,
        p.s, p.t, params, &diag);
    total_bits += ch.cost().bits_total;
    outcome.reruns += diag.total_bi_runs;
    outcome.inexact += (out.alice != p.expected_intersection ||
                        out.bob != p.expected_intersection);
  }
  outcome.bits_per_element = static_cast<double>(total_bits) /
                             static_cast<double>(trials) /
                             static_cast<double>(k);
  outcome.reruns /= static_cast<std::uint64_t>(trials);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("ablation", argc, argv);
  const std::size_t k = rep.smoke() ? 1024 : 4096;
  const int trials = rep.smoke() ? 3 : 10;
  const std::string per_trials = "inexact/" + std::to_string(trials);

  {
    auto& table = rep.table(
        "E12a: bucket-count ablation  (paper: exactly k buckets; k = " +
            std::to_string(k) + ", r = 3)",
        {"buckets", "bits/elem", "BI runs", per_trials});
    for (std::size_t buckets : {k / 8, k / 2, k, 2 * k, 8 * k}) {
      core::VerificationTreeParams params;
      params.rounds_r = 3;
      params.bucket_count = buckets;
      const Outcome o = sweep(k, params, trials, rep.seed_for(buckets));
      table.add_row({bench::fmt_u64(buckets),
                     bench::fmt_double(o.bits_per_element),
                     bench::fmt_u64(o.reruns), bench::fmt_u64(o.inexact)});
    }
    table.print();
    std::printf(
        "\nMeasured shape: cost is flat from k/8 to k buckets (the\n"
        "per-leaf O(m log m) growth and the per-leaf equality overhead\n"
        "roughly cancel over that range) and blows up past 2k, where\n"
        "mostly-empty leaves still pay equality framing. The paper's\n"
        "choice of k buckets sits safely on the flat part.\n");
  }

  {
    auto& table = rep.table(
        "E12b: equality-bit schedule ablation  (paper constant: 4 log^(r-i) "
        "k bits)",
        {"eq_bits_scale", "bits/elem", per_trials});
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      core::VerificationTreeParams params;
      params.rounds_r = 3;
      params.eq_bits_scale = scale;
      const Outcome o = sweep(
          k, params, trials,
          rep.seed_for(static_cast<std::uint64_t>(scale * 100)));
      table.add_row({bench::fmt_double(scale),
                     bench::fmt_double(o.bits_per_element),
                     bench::fmt_u64(o.inexact)});
    }
    table.print();
    std::printf(
        "\nMeasured shape: cost grows linearly with the scale above 1.0\n"
        "while the error is already at 1/poly(k); moderate down-scaling\n"
        "still verifies (failures need the ~1e-9 sabotage regime of E4b —\n"
        "the schedule has real slack at practical k). The 0.25 row costs\n"
        "MORE than 0.5: weaker tests let wrong candidates deep into the\n"
        "tree, where repairs are pricier.\n");
  }

  {
    auto& table = rep.table(
        "E12c: Basic-Intersection range ablation  (paper: t = "
        "Theta(m^(i+2)))",
        {"bi_range_scale", "bits/elem", "BI runs", per_trials});
    for (double scale : {0.01, 0.1, 1.0, 10.0}) {
      core::VerificationTreeParams params;
      params.rounds_r = 3;
      params.bi_range_scale = scale;
      const Outcome o = sweep(
          k, params, trials,
          rep.seed_for(static_cast<std::uint64_t>(scale * 1000) + 7));
      table.add_row({bench::fmt_double(scale, 2),
                     bench::fmt_double(o.bits_per_element),
                     bench::fmt_u64(o.reruns), bench::fmt_u64(o.inexact)});
    }
    table.print();
    std::printf(
        "\nMeasured shape: shrinking the range 100x raises re-runs ~15%%\n"
        "but lowers per-exchange width, leaving totals within ~15%% — the\n"
        "design is robust across two orders of magnitude of this knob;\n"
        "only the clamped extreme (bi_range_scale ~ 1e-6, exercised in\n"
        "the stress tests) degrades accuracy.\n");
  }

  {
    auto& table = rep.table(
        "E12d: warm-up protocol vs the tree  (O(k loglog k) vs O(k "
        "log^(r) k))",
        {"k", "toy bits/elem", "tree r=2 bits/elem",
         "tree r=log*k bits/elem"});
    const std::vector<std::size_t> kks = bench::sizes<std::size_t>(
        rep.options(), {1024, 4096, 16384, 65536}, {1024, 4096});
    for (std::size_t kk : kks) {
      util::Rng wrng(rep.seed_for(kk));
      const util::SetPair p =
          util::random_set_pair(wrng, std::uint64_t{1} << 30, kk, kk / 2);
      const auto toy =
          core::ToyBucketProtocol{}.run(kk, std::uint64_t{1} << 30, p.s, p.t);
      core::VerificationTreeParams r2;
      r2.rounds_r = 2;
      const auto tree2 = core::VerificationTreeProtocol{r2}.run(
          kk, std::uint64_t{1} << 30, p.s, p.t);
      const auto tree_star = core::VerificationTreeProtocol{}.run(
          kk, std::uint64_t{1} << 30, p.s, p.t);
      table.add_row(
          {bench::fmt_u64(kk),
           bench::fmt_double(static_cast<double>(toy.cost.bits_total) /
                             static_cast<double>(kk)),
           bench::fmt_double(static_cast<double>(tree2.cost.bits_total) /
                             static_cast<double>(kk)),
           bench::fmt_double(static_cast<double>(tree_star.cost.bits_total) /
                             static_cast<double>(kk))});
    }
    table.print();
    std::printf(
        "\nMeasured shape: the warm-up column grows like loglog k\n"
        "(~0.8 bits per doubling of log k) while the tree columns are\n"
        "flat — the asymptotic ordering the paper proves. At practical k\n"
        "the warm-up's smaller constants still win; equating 3 loglog k\n"
        "with the tree's ~16-bit stage overhead puts the crossover near\n"
        "k ~ 2^40, a nice reminder that the paper's contribution is an\n"
        "asymptotic one.\n");
  }
  return rep.finish();
}
