// E11 — internal quantities the proofs rely on:
//   * Lemma 3.10: expected Basic-Intersection re-runs per leaf = O(1);
//   * the per-stage cost split (stage-0 equality dominates, every later
//     level costs O(k) — the telescoping sum in Theorem 3.6's proof);
//   * Theorem 3.1 equation (1): E[|E|] <= 6k bucket-pair instances;
//   * amortized-equality tree depth.
#include <cstdio>

#include "bench_util.h"
#include "core/bucket_eq.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("internals", argc, argv);
  const std::uint64_t universe = std::uint64_t{1} << 32;

  {
    const std::size_t k = rep.smoke() ? 2048 : 16384;
    auto& table = rep.table(
        "E11a: verification-tree internals per stage  (k = " +
            std::to_string(k) + ", r = 4)",
        {"stage", "failed nodes", "equality bits", "basic-intersection bits",
         "eq bits/k"});
    util::Rng wrng(rep.seed_for(1));
    const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
    core::VerificationTreeParams params;
    params.rounds_r = 4;
    core::VerificationTreeDiag diag;
    sim::SharedRandomness shared(rep.seed_for(1, 1));
    sim::Channel ch;
    core::verification_tree_intersection(ch, shared, rep.seed(), universe,
                                         p.s, p.t, params, &diag);
    for (std::size_t i = 0; i < diag.stage_failures.size(); ++i) {
      table.add_row(
          {bench::fmt_u64(i), bench::fmt_u64(diag.stage_failures[i]),
           bench::fmt_u64(diag.stage_eq_bits[i]),
           bench::fmt_u64(diag.stage_bi_bits[i]),
           bench::fmt_double(static_cast<double>(diag.stage_eq_bits[i]) /
                             static_cast<double>(k))});
    }
    table.print();
    std::printf(
        "\nShape check: equality bits/k stay ~4-5 at every stage (the O(k)\n"
        "per level of Theorem 3.6) except the last, whose 4 log k bits are\n"
        "amortized over k/log k nodes; re-run volume collapses after\n"
        "stage 0.\n");
  }

  {
    auto& table =
        rep.table("E11b: Lemma 3.10 — Basic-Intersection runs per leaf",
                  {"k", "total BI runs", "runs per leaf (expect O(1))"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {1024, 4096, 16384, 65536}, {1024, 4096});
    for (std::size_t k : ks) {
      util::Rng wrng(rep.seed_for(k));
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      core::VerificationTreeDiag diag;
      sim::SharedRandomness shared(rep.seed_for(k, 2));
      sim::Channel ch;
      core::verification_tree_intersection(ch, shared, rep.seed(), universe,
                                           p.s, p.t, {}, &diag);
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(diag.total_bi_runs),
                     bench::fmt_double(static_cast<double>(diag.total_bi_runs) /
                                       static_cast<double>(k))});
    }
    table.print();
  }

  {
    const int runs = rep.smoke() ? 2 : 5;
    auto& table = rep.table(
        "E11c: Theorem 3.1 equation (1) — instance count E[|E|] <= 6k",
        {"k", "avg |E| over " + std::to_string(runs) + " runs",
         "|E|/k (expect < 6)"});
    const std::vector<std::size_t> ks = bench::sizes<std::size_t>(
        rep.options(), {256, 1024, 4096, 16384}, {256, 1024});
    for (std::size_t k : ks) {
      double total = 0;
      for (int t = 0; t < runs; ++t) {
        util::Rng wrng(rep.seed_for(k + static_cast<std::uint64_t>(t)));
        const util::SetPair p =
            util::random_set_pair(wrng, universe, k, k / 2);
        sim::SharedRandomness shared(
            rep.seed_for(static_cast<std::uint64_t>(t), k));
        sim::Channel ch;
        core::BucketEqStats stats;
        core::bucket_eq_intersection(ch, shared, rep.seed(), universe, p.s,
                                     p.t, 3, &stats);
        total += static_cast<double>(stats.instances);
      }
      const double avg = total / static_cast<double>(runs);
      table.add_row({bench::fmt_u64(k), bench::fmt_double(avg),
                     bench::fmt_double(avg / static_cast<double>(k))});
    }
    table.print();
  }
  return rep.finish();
}
