// E11 — internal quantities the proofs rely on:
//   * Lemma 3.10: expected Basic-Intersection re-runs per leaf = O(1);
//   * the per-stage cost split (stage-0 equality dominates, every later
//     level costs O(k) — the telescoping sum in Theorem 3.6's proof);
//   * Theorem 3.1 equation (1): E[|E|] <= 6k bucket-pair instances;
//   * amortized-equality tree depth.
#include <cstdio>

#include "bench_util.h"
#include "core/bucket_eq.h"
#include "core/verification_tree.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main() {
  using namespace setint;
  const std::uint64_t universe = std::uint64_t{1} << 32;

  bench::print_header(
      "E11a: verification-tree internals per stage  (k = 16384, r = 4)");
  {
    const std::size_t k = 16384;
    util::Rng wrng(1);
    const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
    core::VerificationTreeParams params;
    params.rounds_r = 4;
    core::VerificationTreeDiag diag;
    sim::SharedRandomness shared(1);
    sim::Channel ch;
    core::verification_tree_intersection(ch, shared, 0, universe, p.s, p.t,
                                         params, &diag);
    bench::Table table({"stage", "failed nodes", "equality bits",
                        "basic-intersection bits", "eq bits/k"});
    for (std::size_t i = 0; i < diag.stage_failures.size(); ++i) {
      table.add_row(
          {bench::fmt_u64(i), bench::fmt_u64(diag.stage_failures[i]),
           bench::fmt_u64(diag.stage_eq_bits[i]),
           bench::fmt_u64(diag.stage_bi_bits[i]),
           bench::fmt_double(static_cast<double>(diag.stage_eq_bits[i]) /
                             static_cast<double>(k))});
    }
    table.print();
    std::printf(
        "\nShape check: equality bits/k stay ~4-5 at every stage (the O(k)\n"
        "per level of Theorem 3.6) except the last, whose 4 log k bits are\n"
        "amortized over k/log k nodes; re-run volume collapses after\n"
        "stage 0.\n");
  }

  bench::print_header("E11b: Lemma 3.10 — Basic-Intersection runs per leaf");
  {
    bench::Table table({"k", "total BI runs", "runs per leaf (expect O(1))"});
    for (std::size_t k : {1024u, 4096u, 16384u, 65536u}) {
      util::Rng wrng(k);
      const util::SetPair p = util::random_set_pair(wrng, universe, k, k / 2);
      core::VerificationTreeDiag diag;
      sim::SharedRandomness shared(k);
      sim::Channel ch;
      core::verification_tree_intersection(ch, shared, 0, universe, p.s, p.t,
                                           {}, &diag);
      table.add_row({bench::fmt_u64(k), bench::fmt_u64(diag.total_bi_runs),
                     bench::fmt_double(static_cast<double>(diag.total_bi_runs) /
                                       static_cast<double>(k))});
    }
    table.print();
  }

  bench::print_header(
      "E11c: Theorem 3.1 equation (1) — instance count E[|E|] <= 6k");
  {
    bench::Table table({"k", "avg |E| over 5 runs", "|E|/k (expect < 6)"});
    for (std::size_t k : {256u, 1024u, 4096u, 16384u}) {
      double total = 0;
      for (int t = 0; t < 5; ++t) {
        util::Rng wrng(k + static_cast<std::uint64_t>(t));
        const util::SetPair p =
            util::random_set_pair(wrng, universe, k, k / 2);
        sim::SharedRandomness shared(static_cast<std::uint64_t>(t));
        sim::Channel ch;
        core::BucketEqStats stats;
        core::bucket_eq_intersection(ch, shared, 0, universe, p.s, p.t, 3,
                                     &stats);
        total += static_cast<double>(stats.instances);
      }
      const double avg = total / 5.0;
      table.add_row({bench::fmt_u64(k), bench::fmt_double(avg),
                     bench::fmt_double(avg / static_cast<double>(k))});
    }
    table.print();
  }
  return 0;
}
