// O — overload governance: offered load x fault rate x budget against
// the degradation ladder, circuit breakers and the shared retry pool
// (docs/ROBUSTNESS.md § overload governance).
//
// Sweeps and acceptance gates (all deterministic functions of --seed;
// exit code 1 if any fails):
//   * O1 at EVERY swept (fault rate x budget) point there is never an
//     unflagged wrong answer — every non-degraded, non-refused result is
//     exact, every degraded result is a superset of the true
//     intersection, every refusal is empty and flagged;
//   * O2 with the circuit breaker enabled, total bits spent on a
//     permanently-dead link are STRICTLY lower than under the PR-2 flat
//     retry policy on identical schedules (that is what the breaker is
//     for);
//   * O4 sessions whose budget is never hit are bit-identical (bits,
//     rounds, repetitions, answer) to ungoverned sessions — governance
//     must be free until it fires.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/budget.h"
#include "multiparty/coordinator.h"
#include "obs/tracer.h"
#include "setint.h"
#include "sim/chaos.h"
#include "sim/network.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

// Per-sweep-point outcome tally over the degradation ladder.
struct LadderTally {
  int trials = 0;
  int exact = 0;             // DegradeRung::kExact
  int flagged_superset = 0;  // DegradeRung::kFlaggedSuperset
  int input_fallback = 0;    // DegradeRung::kInputFallback
  int refused = 0;           // DegradeRung::kRefused
  int unflagged_wrong = 0;      // gate O1: must stay 0
  int superset_violations = 0;  // gate O1: must stay 0
  std::uint64_t total_bits = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t budget_trips = 0;
};

void observe(LadderTally& tally, const IntersectResult& result,
             util::SetView expected) {
  switch (result.rung) {
    case core::DegradeRung::kExact:
      tally.exact += 1;
      break;
    case core::DegradeRung::kFlaggedSuperset:
      tally.flagged_superset += 1;
      break;
    case core::DegradeRung::kInputFallback:
      tally.input_fallback += 1;
      break;
    case core::DegradeRung::kRefused:
      tally.refused += 1;
      break;
  }
  if (result.refused) {
    // A refusal carries no answer: non-empty output would be a contract
    // violation, but the superset check does not apply.
    if (!result.intersection.empty()) tally.unflagged_wrong += 1;
  } else {
    if (!result.degraded && result.intersection != util::Set(expected.begin(),
                                                             expected.end())) {
      tally.unflagged_wrong += 1;
    }
    if (!util::is_subset(expected, result.intersection)) {
      tally.superset_violations += 1;
    }
  }
  if (result.budget_reason != core::BudgetDimension::kNone) {
    tally.budget_trips += 1;
  }
  tally.total_bits += result.bits;
  tally.total_rounds += result.rounds;
}

void add_ladder_row(bench::Table& table, std::vector<std::string> prefix,
                    const LadderTally& c) {
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.trials)));
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.exact)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.flagged_superset)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.input_fallback)));
  prefix.push_back(bench::fmt_u64(static_cast<std::uint64_t>(c.refused)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.unflagged_wrong)));
  prefix.push_back(
      bench::fmt_u64(static_cast<std::uint64_t>(c.superset_violations)));
  prefix.push_back(bench::fmt_u64(c.budget_trips));
  prefix.push_back(bench::fmt_u64(
      c.total_bits / static_cast<std::uint64_t>(std::max(1, c.trials))));
  table.add_row(std::move(prefix));
}

const std::vector<std::string> kLadderColumns = {
    "trials",  "exact",           "flagged superset",
    "fallback", "refused",         "unflagged wrong",
    "superset violations", "budget trips", "avg bits"};

std::vector<std::string> with_prefix(std::vector<std::string> prefix) {
  std::vector<std::string> columns = std::move(prefix);
  columns.insert(columns.end(), kLadderColumns.begin(), kLadderColumns.end());
  return columns;
}

// The O2/O3 star: a 4-player coordinator run whose chaos plan kills link
// (0, 3) with a drop-everything fault overlay while the other links stay
// clean.
sim::ChaosPlan dead_link_plan(std::uint64_t chaos_seed,
                              std::uint64_t protocol_seed) {
  sim::ChaosSpec spec;
  spec.players = 4;
  spec.seed = chaos_seed;
  sim::ChaosPlan plan(spec, protocol_seed);
  sim::FaultSpec drop_all;
  drop_all.drop_prob = 1.0;
  drop_all.seed = chaos_seed ^ 0xD0D0;
  plan.set_link_faults(0, 3, drop_all);
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("overload", argc, argv);

  const std::uint64_t universe = std::uint64_t{1} << 16;
  const std::size_t k = 32;
  int violations = 0;

  // O1: fault rate x budget arm — the full degradation ladder under
  // combined pressure. Budgets are enforced cooperatively, so a tight cap
  // descends the ladder instead of producing a wrong (or silently
  // truncated) answer, at every fault rate.
  {
    struct BudgetArm {
      const char* name;
      core::SessionBudgetSpec spec;
    };
    std::vector<BudgetArm> arms;
    arms.push_back({"unlimited", {}});
    {
      core::SessionBudgetSpec tight;
      tight.max_bits = 512;
      arms.push_back({"bits<=512", tight});
    }
    {
      core::SessionBudgetSpec deadline;
      deadline.deadline_ticks = 6;
      arms.push_back({"deadline 6", deadline});
    }
    {
      core::SessionBudgetSpec refuse;
      refuse.max_bits = 512;
      refuse.refuse_on_exhaustion = true;
      arms.push_back({"bits<=512 refuse", refuse});
    }

    auto& table = rep.table(
        "O1: fault rate x budget -> degradation ladder  (k=32, n=2^16)",
        with_prefix({"drop/msg", "budget"}));
    const std::vector<double> rates = bench::sizes<double>(
        rep.options(), {0.0, 0.25, 1.0}, {0.0, 1.0});
    const int trials = rep.smoke() ? 25 : 120;
    for (double rate : rates) {
      for (const BudgetArm& arm : arms) {
        LadderTally tally;
        tally.trials = trials;
        const std::uint64_t salt =
            0x100 + static_cast<std::uint64_t>(rate * 100) * 16 +
            static_cast<std::uint64_t>(&arm - arms.data());
        util::Rng wrng(rep.seed_for(salt, 0xA0));
        for (int t = 0; t < trials; ++t) {
          const util::SetPair pair =
              util::random_set_pair(wrng, universe, k, k / 4);
          std::unique_ptr<sim::FaultPlan> faults;
          if (rate > 0.0) {
            sim::FaultSpec fs;
            fs.drop_prob = rate;
            fs.seed = rep.seed_for(salt, 0xFA00 + static_cast<std::uint64_t>(t));
            faults = std::make_unique<sim::FaultPlan>(fs);
          }
          obs::Tracer tracer;
          IntersectOptions options;
          options.universe = universe;
          options.seed =
              rep.seed_for(salt, 0x5E00 + static_cast<std::uint64_t>(t));
          options.fault_plan = faults.get();
          options.tracer = &tracer;
          options.budget = arm.spec;
          // Keep retry spend bounded at drop=1.0 so the sweep stays fast;
          // the flat default (40) is sized for flip noise, not black holes.
          options.retry.max_attempts = 6;
          options.retry.backoff_rounds = 2;
          options.retry.backoff_multiplier = 2.0;
          options.retry.backoff_jitter = 0.25;
          const IntersectResult result = intersect(pair.s, pair.t, options);
          observe(tally, result, pair.expected_intersection);
          rep.merge_metrics(tracer.metrics());
        }
        violations += tally.unflagged_wrong + tally.superset_violations;
        add_ladder_row(table, {bench::fmt_double(rate, 2), arm.name}, tally);
      }
    }
    table.print();
  }

  // O2: permanently-dead link, PR-2 flat retry vs circuit breaker, on
  // identical chaos schedules. The gate: the breaker arm spends strictly
  // fewer total bits — the retries it refuses to burn on a link the
  // evidence says is dead.
  bool breaker_wins = true;
  {
    auto& table = rep.table(
        "O2: dead link (0,3), flat retry vs circuit breaker  "
        "(4 players, k=24, n=2^14)",
        {"arm", "trials", "total bits", "total repetitions", "breaker opens",
         "degraded pairs", "superset violations"});
    const int trials = rep.smoke() ? 8 : 40;
    const std::uint64_t mp_universe = std::uint64_t{1} << 14;
    std::uint64_t arm_bits[2] = {0, 0};
    for (const bool with_breaker : {false, true}) {
      std::uint64_t total_bits = 0;
      std::uint64_t total_reps = 0;
      std::uint64_t opens = 0;
      std::uint64_t degraded_pairs = 0;
      int mp_violations = 0;
      util::Rng wrng(rep.seed_for(0x200, 0xB0));  // same instances both arms
      for (int t = 0; t < trials; ++t) {
        const util::MultiSetInstance instance = util::random_multi_sets(
            wrng, mp_universe, /*players=*/4, /*k=*/24, /*shared=*/6);
        const std::uint64_t session_seed =
            rep.seed_for(0x210, static_cast<std::uint64_t>(t));
        sim::ChaosPlan plan = dead_link_plan(
            rep.seed_for(0x220, static_cast<std::uint64_t>(t)), session_seed);
        obs::Tracer tracer;
        sim::Network network(4);
        network.set_tracer(&tracer);
        sim::SharedRandomness shared(session_seed);
        multiparty::MultipartyParams params;
        params.chaos = &plan;
        params.retry.max_attempts = 8;
        params.retry.degraded_attempts = 1;
        if (with_breaker) params.breaker.failure_threshold = 2;
        const multiparty::MultipartyResult result =
            multiparty::coordinator_intersection(network, shared, mp_universe,
                                                 instance.sets, params);
        if (!util::is_subset(instance.expected_intersection,
                             result.intersection)) {
          mp_violations += 1;
        }
        total_bits += network.total_bits();
        total_reps += result.total_repetitions;
        opens += result.breaker_opens;
        degraded_pairs += result.degraded_pairs;
        rep.merge_metrics(tracer.metrics());
      }
      violations += mp_violations;
      arm_bits[with_breaker ? 1 : 0] = total_bits;
      table.add_row({with_breaker ? "breaker (threshold 2)" : "flat retry",
                     bench::fmt_u64(static_cast<std::uint64_t>(trials)),
                     bench::fmt_u64(total_bits), bench::fmt_u64(total_reps),
                     bench::fmt_u64(opens), bench::fmt_u64(degraded_pairs),
                     bench::fmt_u64(static_cast<std::uint64_t>(mp_violations))});
    }
    breaker_wins = arm_bits[1] < arm_bits[0];
    table.print();
    std::printf("\nbreaker spends strictly fewer bits on the dead link than "
                "flat retry: %s\n",
                breaker_wins ? "YES" : "NO");
  }

  // O3: offered load x shared retry pool. Every link is lossy, so pair
  // sessions compete for retry tokens; the pool bounds the run's total
  // retry spend and admission control sheds late pairs instead of letting
  // them queue on a drained pool. Honest accounting is the invariant:
  // shed + refused + degraded pairs all flagged, answer still a superset.
  {
    auto& table = rep.table(
        "O3: offered load x retry pool  (lossy links drop=0.4, k=24, n=2^14)",
        {"players", "pool", "shed", "degraded pairs", "pool denials",
         "total repetitions", "superset violations"});
    const std::vector<std::size_t> loads = bench::sizes<std::size_t>(
        rep.options(), {4, 8, 16}, {4, 8});
    const int trials = rep.smoke() ? 6 : 25;
    const std::uint64_t mp_universe = std::uint64_t{1} << 14;
    for (std::size_t players : loads) {
      for (const std::uint64_t pool_capacity : {std::uint64_t{0},
                                                std::uint64_t{3 * players}}) {
        std::uint64_t shed = 0;
        std::uint64_t degraded_pairs = 0;
        std::uint64_t pool_denials = 0;
        std::uint64_t total_reps = 0;
        int mp_violations = 0;
        util::Rng wrng(rep.seed_for(0x300 + players, pool_capacity));
        for (int t = 0; t < trials; ++t) {
          const util::MultiSetInstance instance = util::random_multi_sets(
              wrng, mp_universe, players, /*k=*/24, /*shared=*/6);
          sim::FaultSpec lossy;
          lossy.drop_prob = 0.4;
          lossy.seed = rep.seed_for(0x310 + players,
                                    static_cast<std::uint64_t>(t));
          sim::FaultPlan faults(lossy);
          const std::uint64_t session_seed = rep.seed_for(
              0x320 + players,
              pool_capacity * 1000 + static_cast<std::uint64_t>(t));
          obs::Tracer tracer;
          sim::Network network(players);
          network.set_tracer(&tracer);
          sim::SharedRandomness shared(session_seed);
          multiparty::MultipartyParams params;
          params.fault_plan = &faults;
          params.retry.max_attempts = 6;
          params.retry.degraded_attempts = 1;
          params.retry_pool_attempts = pool_capacity;
          params.admission.critical_fraction = 0.5;
          params.admission.seed = session_seed;
          const multiparty::MultipartyResult result =
              multiparty::coordinator_intersection(
                  network, shared, mp_universe, instance.sets, params);
          if (!util::is_subset(instance.expected_intersection,
                               result.intersection)) {
            mp_violations += 1;
          }
          shed += result.shed_pairs;
          degraded_pairs += result.degraded_pairs;
          pool_denials += result.pool_retry_denials;
          total_reps += result.total_repetitions;
          rep.merge_metrics(tracer.metrics());
        }
        violations += mp_violations;
        table.add_row(
            {bench::fmt_u64(players),
             pool_capacity == 0 ? "unlimited" : bench::fmt_u64(pool_capacity),
             bench::fmt_u64(shed), bench::fmt_u64(degraded_pairs),
             bench::fmt_u64(pool_denials), bench::fmt_u64(total_reps),
             bench::fmt_u64(static_cast<std::uint64_t>(mp_violations))});
      }
    }
    table.print();
  }

  // O4: governance must be free until it fires. Clean channel, generous
  // budget: every (bits, rounds, repetitions, answer) tuple must match the
  // ungoverned run exactly — the facade-level face of the golden-digest
  // bit-identity contract (tests/golden_test.cc pins the transcripts
  // themselves with governance off).
  bool unhit_budget_identical = true;
  {
    auto& table = rep.table(
        "O4: unhit budget vs no budget  (clean channel, k=32, n=2^16)",
        {"trials", "identical runs", "mismatches"});
    const int trials = rep.smoke() ? 15 : 60;
    int identical = 0;
    util::Rng wrng(rep.seed_for(0x400, 0xC0));
    for (int t = 0; t < trials; ++t) {
      const util::SetPair pair = util::random_set_pair(wrng, universe, k, k / 4);
      IntersectOptions plain;
      plain.universe = universe;
      plain.seed = rep.seed_for(0x410, static_cast<std::uint64_t>(t));
      const IntersectResult base = intersect(pair.s, pair.t, plain);
      IntersectOptions governed = plain;
      governed.budget.max_bits = std::uint64_t{1} << 30;
      governed.budget.max_rounds = std::uint64_t{1} << 20;
      const IntersectResult gov = intersect(pair.s, pair.t, governed);
      const bool same = gov.bits == base.bits && gov.rounds == base.rounds &&
                        gov.repetitions == base.repetitions &&
                        gov.intersection == base.intersection &&
                        gov.rung == core::DegradeRung::kExact &&
                        gov.budget_reason == core::BudgetDimension::kNone;
      if (same) {
        identical += 1;
      } else {
        unhit_budget_identical = false;
      }
    }
    table.add_row({bench::fmt_u64(static_cast<std::uint64_t>(trials)),
                   bench::fmt_u64(static_cast<std::uint64_t>(identical)),
                   bench::fmt_u64(static_cast<std::uint64_t>(
                       trials - identical))});
    table.print();
  }

  std::printf("\nSafety held at every swept point (no unflagged wrong "
              "answers, no superset violations): %s\n",
              violations == 0 ? "YES" : "NO");
  rep.note("safety_violations", violations);
  rep.note("breaker_beats_flat_retry", breaker_wins);
  rep.note("unhit_budget_identical", unhit_budget_identical);
  const bool ok = violations == 0 && breaker_wins && unhit_budget_identical;
  return rep.finish(ok ? 0 : 1);
}
