// E5 — Corollary 4.1 (coordinator protocol): average communication per
// player O(k log^(r) k) independent of m; rounds O(r * max(1, log(m)/log k)).
//
// Expected shape: the avg-bits/player column stays ~flat as m grows 256x;
// rounds grow only with the number of coordinator-recursion levels.
#include <cstdio>

#include "bench_util.h"
#include "multiparty/coordinator.h"
#include "sim/network.h"
#include "sim/randomness.h"
#include "util/rng.h"
#include "util/set_util.h"

int main(int argc, char** argv) {
  using namespace setint;
  auto rep = bench::Reporter::FromArgs("multiparty_avg", argc, argv);
  const std::vector<std::size_t> ms = bench::sizes<std::size_t>(
      rep.options(), {4, 16, 64, 256, 1024}, {4, 16, 64});

  for (std::size_t k : {16u, 64u}) {
    auto& table =
        rep.table("E5: coordinator protocol, k = " + std::to_string(k) +
                      "  (Corollary 4.1)",
                  {"m", "avg bits/player", "avg/(k) per elem",
                   "max bits/player", "levels", "rounds", "exact"});
    for (std::size_t m : ms) {
      util::Rng wrng(rep.seed_for(m * 7 + k));
      const util::MultiSetInstance inst = util::random_multi_sets(
          wrng, std::uint64_t{1} << 26, m, k, k / 2);
      sim::Network net(m);
      sim::SharedRandomness shared(rep.seed_for(m + k, 1));
      const auto result = multiparty::coordinator_intersection(
          net, shared, std::uint64_t{1} << 26, inst.sets);
      const bool exact = result.intersection == inst.expected_intersection;
      table.add_row(
          {bench::fmt_u64(m), bench::fmt_double(net.average_player_bits()),
           bench::fmt_double(net.average_player_bits() /
                             static_cast<double>(k)),
           bench::fmt_u64(net.max_player_bits()),
           bench::fmt_u64(result.levels), bench::fmt_u64(net.rounds()),
           exact ? "yes" : "NO"});
    }
    table.print();
  }
  std::printf(
      "\nShape check: avg bits/player is ~flat in m (the Corollary 4.1\n"
      "guarantee); max bits/player is ~2k times larger — the coordinator\n"
      "bottleneck that Corollary 4.2 (E6) removes.\n");
  return rep.finish();
}
