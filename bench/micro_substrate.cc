// M1 — google-benchmark micro-benchmarks for the substrates: bit I/O,
// gamma coding, hashing (pairwise, mask, FKS), prime sampling, and
// end-to-end protocol wall-clock.
#include <benchmark/benchmark.h>

#include "core/verification_tree.h"
#include "hashing/fks.h"
#include "hashing/mask_hash.h"
#include "hashing/pairwise.h"
#include "hashing/primes.h"
#include "obs/tracer.h"
#include "sim/channel.h"
#include "sim/randomness.h"
#include "util/bitio.h"
#include "util/rng.h"
#include "util/set_util.h"

namespace {

using namespace setint;

void BM_BitBufferAppendBits(benchmark::State& state) {
  for (auto _ : state) {
    util::BitBuffer b;
    for (int i = 0; i < 1000; ++i) {
      b.append_bits(static_cast<std::uint64_t>(i) & 0x1ffff, 17);
    }
    benchmark::DoNotOptimize(b.size_bits());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BitBufferAppendBits);

void BM_GammaEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::uint64_t> values(1000);
  for (auto& v : values) v = rng.next() >> 40;
  for (auto _ : state) {
    util::BitBuffer b;
    for (std::uint64_t v : values) b.append_gamma64(v);
    util::BitReader r(b);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i) sum += r.read_gamma64();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_GammaEncodeDecode);

void BM_PairwiseHashEval(benchmark::State& state) {
  util::Rng rng(2);
  const auto h = hashing::PairwiseHash::sample(rng, std::uint64_t{1} << 40,
                                               1u << 20);
  std::uint64_t x = 12345;
  for (auto _ : state) {
    x = h(x) + 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PairwiseHashEval);

void BM_MaskHash(benchmark::State& state) {
  util::Rng rng(3);
  util::BitBuffer data;
  for (int i = 0; i < state.range(0); ++i) data.append_bit(i & 1);
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hashing::mask_hash(data, 16, rng.substream(n++)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) / 8);
}
BENCHMARK(BM_MaskHash)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RandomPrime(benchmark::State& state) {
  util::Rng rng(4);
  const std::uint64_t lo = std::uint64_t{1}
                           << static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashing::random_prime_in(rng, lo, 2 * lo));
  }
}
BENCHMARK(BM_RandomPrime)->Arg(20)->Arg(40)->Arg(60);

void BM_FksSample(benchmark::State& state) {
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hashing::FksCompressor::sample(rng, std::uint64_t{1} << 40, 1024));
  }
}
BENCHMARK(BM_FksSample);

void BM_SetEncode(benchmark::State& state) {
  util::Rng rng(6);
  const util::Set s = util::random_set(
      rng, std::uint64_t{1} << 30, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::BitBuffer b;
    util::append_set(b, s);
    benchmark::DoNotOptimize(b.size_bits());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetEncode)->Arg(256)->Arg(4096);

void BM_VerificationTreeEndToEnd(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  util::Rng wrng(7);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 32, k, k / 2);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    sim::SharedRandomness shared(nonce);
    sim::Channel ch;
    const auto out = core::verification_tree_intersection(
        ch, shared, nonce++, std::uint64_t{1} << 32, p.s, p.t, {});
    benchmark::DoNotOptimize(out.alice.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_VerificationTreeEndToEnd)->Arg(1024)->Arg(4096)->Arg(16384);

// Same protocol with a live tracer: the delta against the benchmark above
// is the observability overhead (acceptance target: the *untraced* run is
// within 3% of the pre-obs baseline; the traced run may pay for its span
// bookkeeping).
void BM_VerificationTreeEndToEndTraced(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  util::Rng wrng(7);
  const util::SetPair p =
      util::random_set_pair(wrng, std::uint64_t{1} << 32, k, k / 2);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    obs::Tracer tracer;
    sim::SharedRandomness shared(nonce);
    sim::Channel ch;
    ch.set_tracer(&tracer);
    const auto out = core::verification_tree_intersection(
        ch, shared, nonce++, std::uint64_t{1} << 32, p.s, p.t, {});
    benchmark::DoNotOptimize(out.alice.size());
    benchmark::DoNotOptimize(tracer.total_bits());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(k));
}
BENCHMARK(BM_VerificationTreeEndToEndTraced)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
